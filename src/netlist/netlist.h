// netlist.h — gate-level netlist database.
//
// The design representation flowing through the whole framework: produced by
// the RISC-V generator (src/riscv), resized by virtual synthesis
// (src/synth), annotated with positions by placement (src/pnr), decomposed
// into per-side nets by the dual-sided router, and traversed by STA
// (src/sta).
//
// Identifiers are dense integer indices (InstId / NetId) into flat vectors —
// the representation every serious P&R database uses.  The storage is laid
// out for million-cell designs:
//
//   * pin connectivity lives in one shared CSR arena — instance i's pins
//     are `pin_net_arena[inst_first_pin[i] .. inst_first_pin[i+1])` — so an
//     instance costs no per-object heap allocation;
//   * names are interned into a chunked character pool and referenced by
//     string_view; instances/nets created without a name (`add_instance(
//     type)` / `add_net()`) cost zero name bytes and synthesize a stable
//     `_i<N>` / `_n<N>` on demand.  `find_instance`/`find_net` resolve both
//     explicit and synthesized spellings.

#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/geom.h"
#include "stdcell/stdcell.h"

namespace ffet::netlist {

using InstId = std::int32_t;
using NetId = std::int32_t;
using PortId = std::int32_t;
inline constexpr InstId kNoInst = -1;
inline constexpr NetId kNoNet = -1;

/// A pin reference: instance + pin index within its cell type.
struct PinRef {
  InstId inst = kNoInst;
  int pin = -1;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// One placed cell instance.  Pin connectivity and the (optional) name live
/// in the Netlist's shared arenas; the struct itself is flat.
struct Instance {
  const stdcell::CellType* type = nullptr;
  /// Placement origin (lower-left), set by the placer.
  geom::Point pos;
  /// Fixed instances (Power Tap Cells, nTSV blockages) may not be moved.
  bool fixed = false;

  geom::Rect bbox() const {
    return geom::make_rect(pos, type->width(), type->height());
  }
};

/// A logical net: one driver, many sinks.  Primary inputs are modeled as
/// driverless nets attached to an input port; primary outputs as ports
/// listed among the sinks.
struct Net {
  PinRef driver;               ///< invalid (inst == kNoInst) for PI nets
  std::vector<PinRef> sinks;   ///< cell input pins
  PortId port = -1;            ///< attached primary port, if any
  bool is_clock = false;       ///< marked by the clock definition / CTS
};

struct Port {
  std::string name;
  bool is_input = true;
  NetId net = kNoNet;
  /// IO placement on the core boundary, set during floorplan/IO planning.
  geom::Point pos;
};

/// Aggregate statistics used by reports and the floorplanner.  Pin and area
/// accumulators are wide: a 1M-cell design crosses 2^31 total pins long
/// before it crosses 2^31 instances.
struct NetlistStats {
  int num_instances = 0;
  int num_sequential = 0;
  int num_nets = 0;
  std::int64_t num_pins = 0;
  double total_cell_area_um2 = 0.0;
  double avg_fanout = 0.0;
};

/// Chunked character arena with stable storage: interned views stay valid
/// for the pool's lifetime (chunks are never reallocated or freed).
class NamePool {
 public:
  NamePool() = default;
  NamePool(NamePool&&) = default;
  NamePool& operator=(NamePool&&) = default;
  NamePool(const NamePool&) = delete;
  NamePool& operator=(const NamePool&) = delete;

  std::string_view intern(std::string_view s) {
    if (s.empty()) return {};
    if (s.size() > cap_ - used_) grow(s.size());
    char* dst = chunks_.back().get() + used_;
    std::memcpy(dst, s.data(), s.size());
    used_ += s.size();
    return {dst, s.size()};
  }

  void clear() {
    chunks_.clear();
    used_ = cap_ = 0;
  }

 private:
  void grow(std::size_t need) {
    const std::size_t sz = std::max(need, kChunkBytes);
    chunks_.push_back(std::make_unique<char[]>(sz));
    used_ = 0;
    cap_ = sz;
  }

  static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
};

/// Heterogeneous string hasher so name maps accept string_view lookups
/// without materializing a std::string.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

class Netlist {
 public:
  explicit Netlist(std::string name, const stdcell::Library* lib);

  // Names reference the internal pool; copying re-interns them, moving is
  // O(1) (chunk storage is pointer-stable).
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);
  Netlist(Netlist&&) = default;
  Netlist& operator=(Netlist&&) = default;

  const std::string& name() const { return name_; }
  const stdcell::Library& library() const { return *lib_; }

  // --- construction -------------------------------------------------------

  InstId add_instance(std::string_view inst_name, std::string_view cell_name);
  InstId add_instance(std::string_view inst_name,
                      const stdcell::CellType* type);
  /// Anonymous instance: no name bytes are stored; the instance answers to
  /// the synthesized spelling `_i<id>`.
  InstId add_instance(const stdcell::CellType* type);
  NetId add_net(std::string_view net_name);
  /// Anonymous net (synthesized spelling `_n<id>`).
  NetId add_net();
  PortId add_input(std::string port_name);   ///< creates and attaches a net
  PortId add_output(std::string port_name);  ///< creates and attaches a net
  /// Expose an existing (internally driven) net as a primary output.
  PortId add_output_for_net(std::string port_name, NetId net);

  /// Bind instance pin `pin_name` to `net`; registers the pin as driver or
  /// sink according to its direction.  A pin may be connected only once.
  void connect(InstId inst, std::string_view pin_name, NetId net);

  /// Rebind an already-connected input pin to a different net (used by
  /// synthesis buffering and CTS).  Driver pins cannot be moved this way.
  void reconnect_sink(InstId inst, std::string_view pin_name, NetId new_net);

  /// Replace the cell type of an instance with a same-footprint-family type
  /// (same function + pin names) — the gate-sizing primitive.
  void resize_instance(InstId inst, const stdcell::CellType* new_type);

  void mark_clock_net(NetId net);

  /// Detach a connected pin from its net, removing it from the net's
  /// driver or sink records (no-op on an open pin).  With pop_instance /
  /// pop_net this gives the ECO engine exact structural revert of a trial
  /// transform.
  void disconnect_pin(InstId inst, std::string_view pin_name);

  /// Remove the most recently added instance; all its pins must be
  /// disconnected.  LIFO-only removal keeps InstId/NetId dense (and the CSR
  /// pin arena append-only), so a trial add_net/add_instance is undone by
  /// disconnect + pop in reverse order.
  void pop_instance();
  /// Remove the most recently added net; it must have no driver, no sinks,
  /// and no attached port.
  void pop_net();

  // --- per-instance pin sides ----------------------------------------------

  /// Override one instance pin's wafer side (the ECO dual-sided pin
  /// re-assignment).  Pin sides normally live on the shared cell master;
  /// the override reroutes just this instance's pin to the other side's
  /// copy without disturbing other instances of the same cell type.
  void set_pin_side(const PinRef& p, stdcell::PinSide side);
  /// Drop the override, reverting to the cell master's side.
  void clear_pin_side(const PinRef& p);

  // --- access --------------------------------------------------------------

  int num_instances() const { return static_cast<int>(instances_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  Instance& instance(InstId id) { return instances_[static_cast<std::size_t>(id)]; }
  const Instance& instance(InstId id) const {
    return instances_[static_cast<std::size_t>(id)];
  }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }
  Port& port(PortId id) { return ports_[static_cast<std::size_t>(id)]; }
  const Port& port(PortId id) const { return ports_[static_cast<std::size_t>(id)]; }

  /// Nets bound to the instance's pins, parallel to type->pins();
  /// kNoNet = open.  A view into the shared CSR arena — invalidated by
  /// add_instance/pop_instance, like any vector iterator.
  std::span<const NetId> pin_nets(InstId id) const {
    const auto first = inst_first_pin_[static_cast<std::size_t>(id)];
    const auto last = inst_first_pin_[static_cast<std::size_t>(id) + 1];
    return {pin_net_arena_.data() + first, pin_net_arena_.data() + last};
  }
  NetId pin_net(InstId id, int pin) const {
    return pin_net_arena_[inst_first_pin_[static_cast<std::size_t>(id)] +
                          static_cast<std::size_t>(pin)];
  }
  int pin_count(InstId id) const {
    return static_cast<int>(inst_first_pin_[static_cast<std::size_t>(id) + 1] -
                            inst_first_pin_[static_cast<std::size_t>(id)]);
  }

  /// The instance's name: the explicit one if given, else the synthesized
  /// `_i<id>`.  `append_*` variants extend `out` without an intermediate
  /// allocation (the streaming-writer path).
  std::string instance_name(InstId id) const;
  std::string net_name(NetId id) const;
  void append_instance_name(std::string& out, InstId id) const;
  void append_net_name(std::string& out, NetId id) const;
  /// True when the object was created with an explicit name.
  bool instance_has_explicit_name(InstId id) const {
    return !inst_names_[static_cast<std::size_t>(id)].empty();
  }
  bool net_has_explicit_name(NetId id) const {
    return !net_names_[static_cast<std::size_t>(id)].empty();
  }

  std::optional<NetId> find_net(std::string_view net_name) const;
  std::optional<InstId> find_instance(std::string_view inst_name) const;
  std::optional<PortId> find_port(std::string_view port_name) const;

  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Port>& ports() const { return ports_; }

  /// The pin's side: a per-instance override when set (set_pin_side),
  /// otherwise the instance's cell master.
  stdcell::PinSide pin_side(const PinRef& p) const;
  /// Absolute pin position = instance origin + pin offset.
  geom::Point pin_position(const PinRef& p) const;
  double pin_cap_ff(const PinRef& p) const;

  NetlistStats stats() const;

  /// Verify structural sanity: every non-physical pin connected, each net
  /// driven at most once, sink lists consistent.  Returns problem messages
  /// (empty == healthy).
  std::vector<std::string> validate() const;

  /// Instances in topological order of the combinational graph (PIs and
  /// register outputs are sources; register D pins and POs are sinks).
  /// Throws std::runtime_error on a combinational cycle.
  std::vector<InstId> topo_order() const;

  /// Pre-size the instance/net/pin arenas (builder-scale hint; optional).
  void reserve(std::size_t insts, std::size_t nets, std::size_t pins);

 private:
  InstId add_instance_impl(std::string_view inst_name,
                           const stdcell::CellType* type);
  NetId add_net_impl(std::string_view net_name);
  static std::uint64_t pin_key(InstId inst, int pin) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(inst))
            << 32) |
           static_cast<std::uint32_t>(pin);
  }

  std::string name_;
  const stdcell::Library* lib_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;

  // CSR pin table: instance i's pin nets are
  // pin_net_arena_[inst_first_pin_[i] .. inst_first_pin_[i+1]).
  std::vector<std::uint32_t> inst_first_pin_{0};
  std::vector<NetId> pin_net_arena_;

  // Interned names; an empty view marks an anonymous object.
  NamePool pool_;
  std::vector<std::string_view> inst_names_;
  std::vector<std::string_view> net_names_;

  std::unordered_map<std::string_view, InstId, StringHash, std::equal_to<>>
      inst_by_name_;
  std::unordered_map<std::string_view, NetId, StringHash, std::equal_to<>>
      net_by_name_;
  std::unordered_map<std::string, PortId, StringHash, std::equal_to<>>
      port_by_name_;
  /// Sparse per-instance pin-side overrides (empty outside ECO flows),
  /// keyed by (inst << 32 | pin).
  std::unordered_map<std::uint64_t, stdcell::PinSide> pin_side_override_;
};

}  // namespace ffet::netlist
