// builder.h — structural netlist construction DSL.
//
// A thin functional layer over Netlist for generator code (the RV32 core,
// test fixtures, synthetic workloads): each helper instantiates a library
// cell, wires its inputs, and returns the freshly created output net.  Bus
// helpers operate on vectors of nets (bit 0 = LSB).
//
// All instance/net names are derived from a monotonically increasing counter
// under a caller-supplied prefix, so generated netlists are deterministic
// and diff-stable.

#pragma once

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.h"

namespace ffet::netlist {

using Bus = std::vector<NetId>;

class Builder {
 public:
  Builder(std::string design_name, const stdcell::Library* lib);

  Netlist& netlist() { return nl_; }
  const Netlist& netlist() const { return nl_; }
  /// Move the finished netlist out; the builder must not be used afterwards.
  Netlist take() { return std::move(nl_); }

  /// Anonymous mode: subsequently created gates and intermediate nets carry
  /// no explicit names (they answer to the synthesized `_i<N>`/`_n<N>`
  /// spellings) — zero name bytes per object, the million-cell setting.
  /// Ports keep their explicit names either way.
  void set_anonymous(bool on) { anonymous_ = on; }
  bool anonymous() const { return anonymous_; }

  /// Pre-size the underlying netlist arenas (instances / nets / pins).
  void reserve(std::size_t insts, std::size_t nets, std::size_t pins) {
    nl_.reserve(insts, nets, pins);
  }

  // --- ports ---------------------------------------------------------------

  NetId input(const std::string& name) {
    return nl_.port(nl_.add_input(name)).net;
  }
  void output(const std::string& name, NetId net) {
    nl_.add_output_for_net(name, net);
  }
  /// Input bus `base0..base<bits-1>`.
  Bus input_bus(const std::string& base, int bits);
  void output_bus(const std::string& base, const Bus& b);

  // --- single gates (D1 drive) ---------------------------------------------

  NetId inv(NetId a);
  NetId buf(NetId a);
  NetId nand2(NetId a, NetId b);
  NetId nor2(NetId a, NetId b);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b);
  NetId aoi21(NetId a1, NetId a2, NetId b);   ///< !(a1·a2 + b)
  NetId oai21(NetId a1, NetId a2, NetId b);   ///< !((a1+a2)·b)
  NetId aoi22(NetId a1, NetId a2, NetId b1, NetId b2);
  NetId oai22(NetId a1, NetId a2, NetId b1, NetId b2);
  NetId mux2(NetId i0, NetId i1, NetId s);    ///< s ? i1 : i0
  NetId dff(NetId d, NetId clk);              ///< returns Q
  NetId dffr(NetId d, NetId clk, NetId rn);   ///< async active-low clear

  /// Constant nets: implemented as a tied inverter pair from a dedicated
  /// tie net (modeling tie cells without adding a cell type).
  NetId zero();
  NetId one();

  // --- trees and buses -------------------------------------------------------

  NetId and_tree(const std::vector<NetId>& xs);
  NetId or_tree(const std::vector<NetId>& xs);

  Bus not_bus(const Bus& a);
  Bus and_bus(const Bus& a, const Bus& b);
  Bus or_bus(const Bus& a, const Bus& b);
  Bus xor_bus(const Bus& a, const Bus& b);
  /// Per-bit 2:1 mux, shared select.
  Bus mux_bus(const Bus& i0, const Bus& i1, NetId s);
  Bus dff_bus(const Bus& d, NetId clk);
  Bus dffr_bus(const Bus& d, NetId clk, NetId rn);
  /// AND every bit with a single enable signal.
  Bus mask_bus(const Bus& a, NetId en);

  /// Ripple-carry adder; returns {sum, carry_out}.  Per bit: two XOR2 for
  /// the sum, AOI22+INV for the majority carry.  Linear depth — compact but
  /// slow; datapaths that set the critical path should use add_fast.
  std::pair<Bus, NetId> add(const Bus& a, const Bus& b, NetId cin);

  /// Sklansky parallel-prefix adder; logarithmic depth (what a synthesis
  /// tool maps timing-critical additions to).  Same interface as add().
  std::pair<Bus, NetId> add_fast(const Bus& a, const Bus& b, NetId cin);

  /// Unsigned array multiplier with Wallace-tree (3:2 carry-save)
  /// reduction and a prefix final adder; returns the full 2n-bit product.
  Bus multiply(const Bus& a, const Bus& b);
  /// a - b via two's complement (returns {diff, carry_out}; carry_out == 1
  /// means no borrow, i.e. a >= b unsigned).
  std::pair<Bus, NetId> sub(const Bus& a, const Bus& b);
  /// Equality comparator (XNOR reduce).
  NetId equal(const Bus& a, const Bus& b);

  /// Logical/arithmetic right barrel shifter, 5 mux stages for 32 bits.
  Bus shift_right(const Bus& a, const Bus& amount5, NetId arith);
  Bus shift_left(const Bus& a, const Bus& amount5);

  /// Zero-extend / truncate to `bits`.
  Bus resize(const Bus& a, int bits);

  /// Fresh uniquely named intermediate net; used together with the *_into
  /// drivers to express feedback (register files, state machines).
  NetId wire(const std::string& hint = "w");
  Bus wires(int bits, const std::string& hint = "w");

  /// Instantiate `cell` driving the pre-declared net `out` — the feedback
  /// primitive.  `out` must not already have a driver.
  void drive(NetId out, std::string_view cell,
             std::initializer_list<NetId> data_inputs);
  void buf_into(NetId out, NetId a) { drive(out, "BUFD1", {a}); }
  void mux2_into(NetId out, NetId i0, NetId i1, NetId s) {
    drive(out, "MUX2D1", {i0, i1, s});
  }

 private:
  NetId gate(std::string_view cell, std::initializer_list<NetId> data_inputs);
  InstId place_gate(std::string_view cell,
                    std::initializer_list<NetId> data_inputs);
  std::string fresh(std::string_view hint);

  Netlist nl_;
  const stdcell::Library* lib_;
  bool anonymous_ = false;
  std::uint64_t counter_ = 0;
  NetId tie_lo_ = kNoNet;
  NetId tie_hi_ = kNoNet;
};

}  // namespace ffet::netlist
