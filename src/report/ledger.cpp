#include "report/ledger.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>
#include <string_view>

#include "flow/report_json.h"  // flow::JsonBuilder
#include "obs/numfmt.h"
#include "obs/obs.h"  // append_jsonl_line (multi-process-safe append)
#include "report/json.h"

namespace ffet::report {

namespace {

// Copy every numeric/bool member of `obj` into `out` (bools as 0/1);
// anything else counts as an unknown field.  Same policy as the
// flow-report reader so ledgers tolerate schema growth.
void read_number_map(const json::Value& obj, std::map<std::string, double>& out,
                     ReadStats* stats) {
  for (const auto& [key, v] : obj.members) {
    if (v.is_number()) {
      out[key] = v.number;
    } else if (v.is_bool()) {
      out[key] = v.boolean ? 1.0 : 0.0;
    } else if (stats) {
      ++stats->unknown_fields;
    }
  }
}

bool parse_entry(std::string_view line, LedgerEntry& entry, ReadStats* stats) {
  const std::optional<json::Value> doc = json::parse(line);
  if (!doc || !doc->is_object()) return false;
  for (const auto& [key, v] : doc->members) {
    if (key == "schema" && v.is_string()) {
      entry.schema = v.str;
    } else if (key == "kind" && v.is_string()) {
      entry.kind = v.str;
    } else if (key == "label" && v.is_string()) {
      entry.label = v.str;
    } else if (key == "host" && v.is_string()) {
      entry.host = v.str;
    } else if (key == "timestamp_s" && v.is_number()) {
      entry.timestamp_s = static_cast<long long>(v.number);
    } else if (key == "threads" && v.is_number()) {
      entry.threads = static_cast<int>(v.number);
    } else if (key == "valid" && v.is_bool()) {
      entry.valid = v.boolean;
    } else if (key == "metrics" && v.is_object()) {
      read_number_map(v, entry.metrics, stats);
    } else if (v.is_number()) {
      entry.extra[key] = v.number;
    } else if (v.is_bool()) {
      entry.extra[key] = v.boolean ? 1.0 : 0.0;
    } else if (stats) {
      ++stats->unknown_fields;
    }
  }
  // A line without the schema marker is not a ledger entry; a line with a
  // *different* schema still reads (forward compatibility within v-family).
  return entry.schema.rfind("ffet.ledger.", 0) == 0;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double pct_change(double base, double now) {
  if (base == 0.0) return now == 0.0 ? 0.0 : 100.0;
  return 100.0 * (now - base) / base;
}

std::string fmt_pct(double pct) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.2f%%", pct);
  return buf;
}

// Gate direction per metric name; threshold < 0 means ungated.
struct Gate {
  double threshold_pct = -1.0;
  bool rise_is_bad = true;
};

Gate gate_for(const std::string& metric, const TrendOptions& o) {
  if (metric == "achieved_freq_ghz") return {o.freq_drop_pct, false};
  if (metric == "power_uw") return {o.power_rise_pct, true};
  if (metric == "wirelength_um") return {o.wirelength_rise_pct, true};
  if (metric == "runtime_ms") return {o.runtime_rise_pct, true};
  if (metric == "peak_rss_kb") return {o.rss_rise_pct, true};
  return {};
}

}  // namespace

std::string ledger_entry_json(const LedgerEntry& entry) {
  std::string out;
  out.reserve(256);
  flow::JsonBuilder j(out);
  j.open_obj();
  j.field("schema",
          entry.schema.empty() ? std::string("ffet.ledger.v1") : entry.schema);
  j.field("kind", entry.kind);
  j.field("label", entry.label);
  j.field("timestamp_s", entry.timestamp_s);
  j.field("host", entry.host);
  j.field("threads", entry.threads);
  j.field("valid", entry.valid);
  j.open_nested("metrics");
  for (const auto& [name, v] : entry.metrics) j.field(name.c_str(), v);
  j.close_obj();
  for (const auto& [name, v] : entry.extra) j.field(name.c_str(), v);
  j.close_obj();
  return out;
}

bool append_ledger_line(const std::string& path, const std::string& line,
                        std::string* error) {
  if (path.empty()) {
    if (error) *error = "empty ledger path";
    return false;
  }
  // O_APPEND + a single write(2) of the whole record: concurrent appenders
  // — including forked serve workers in other processes — cannot tear or
  // interleave lines (see obs::append_jsonl_line).
  return obs::append_jsonl_line(path, line, error);
}

std::vector<LedgerEntry> read_ledger(std::istream& is, ReadStats* stats) {
  std::vector<LedgerEntry> entries;
  std::string line;
  while (std::getline(is, line)) {
    std::string_view sv(line);
    while (!sv.empty() && (sv.back() == '\r' || sv.back() == ' ')) {
      sv.remove_suffix(1);
    }
    if (sv.empty()) continue;
    if (stats) ++stats->lines;
    LedgerEntry entry;
    if (parse_entry(sv, entry, stats)) {
      entries.push_back(std::move(entry));
      if (stats) ++stats->parsed;
    } else if (stats) {
      ++stats->malformed;
    }
  }
  return entries;
}

std::vector<LedgerEntry> read_ledger_file(const std::string& path,
                                          ReadStats* stats,
                                          std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open ledger file: " + path;
    return {};
  }
  return read_ledger(is, stats);
}

TrendReport analyze_trend(const std::vector<LedgerEntry>& entries,
                          const TrendOptions& options) {
  TrendReport report;

  // Group by (kind, label) preserving first-seen order.
  std::vector<std::pair<std::string, std::vector<const LedgerEntry*>>> groups;
  for (const LedgerEntry& e : entries) {
    if (!options.kind.empty() && e.kind != options.kind) continue;
    if (!options.label.empty() && e.label != options.label) continue;
    const std::string key = e.kind + "\x1f" + e.label;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.push_back({key, {}});
      it = groups.end() - 1;
    }
    it->second.push_back(&e);
  }
  if (groups.empty()) {
    report.notes.push_back("no ledger entries matched");
    return report;
  }

  for (const auto& [key, runs] : groups) {
    TrendSeries series;
    series.kind = runs.front()->kind;
    series.label = runs.front()->label;
    series.runs = static_cast<int>(runs.size());
    const LedgerEntry& latest = *runs.back();
    series.latest_valid = latest.valid;

    if (runs.size() < 2) {
      report.notes.push_back("'" + series.label + "' (" + series.kind +
                             "): only 1 run, no trend baseline yet");
      report.series.push_back(std::move(series));
      continue;
    }

    // Prior window: up to `window` runs immediately before the latest.
    const std::size_t window =
        options.window > 0 ? static_cast<std::size_t>(options.window)
                           : runs.size() - 1;
    const std::size_t prior_count = std::min(window, runs.size() - 1);
    const std::size_t prior_begin = runs.size() - 1 - prior_count;

    if (options.gate_validity && !latest.valid) {
      bool any_prior_valid = false;
      for (std::size_t i = prior_begin; i + 1 < runs.size(); ++i) {
        any_prior_valid |= runs[i]->valid;
      }
      if (any_prior_valid) {
        series.validity_regression = true;
        ++series.regressions;
      }
    }

    // Union of metric names across the group, stable order: latest run's
    // order of appearance would need member order — maps are sorted, which
    // is deterministic and fine for a report.
    std::map<std::string, int> names;
    for (const LedgerEntry* r : runs) {
      for (const auto& [name, _] : r->metrics) names[name] = 1;
    }

    for (const auto& [name, _] : names) {
      TrendMetric tm;
      tm.metric = name;
      for (const LedgerEntry* r : runs) {
        auto it = r->metrics.find(name);
        if (it != r->metrics.end()) tm.values.push_back(it->second);
      }
      const auto latest_it = latest.metrics.find(name);
      if (latest_it == latest.metrics.end() || tm.values.size() < 2) {
        tm.note = "insufficient history";
        series.metrics.push_back(std::move(tm));
        continue;
      }
      tm.latest = latest_it->second;

      std::vector<double> prior;
      for (std::size_t i = prior_begin; i + 1 < runs.size(); ++i) {
        auto it = runs[i]->metrics.find(name);
        if (it != runs[i]->metrics.end()) prior.push_back(it->second);
      }
      if (prior.empty()) {
        tm.note = "insufficient history";
        series.metrics.push_back(std::move(tm));
        continue;
      }
      tm.median_prior = median_of(prior);
      const double pct = pct_change(tm.median_prior, tm.latest);

      if (name == "drv") {
        tm.gated = options.gate_drv;
        if (tm.gated && tm.latest > tm.median_prior) {
          tm.regression = true;
          tm.note = "drv rose vs prior median";
        }
      } else {
        const Gate gate = gate_for(name, options);
        tm.gated = gate.threshold_pct >= 0.0;
        if (tm.gated) {
          const double bad = gate.rise_is_bad ? pct : -pct;
          if (bad > gate.threshold_pct) {
            tm.regression = true;
            tm.note = (gate.rise_is_bad ? "rose " : "dropped ") +
                      fmt_pct(gate.rise_is_bad ? pct : -pct) + " > " +
                      obs::format_double(gate.threshold_pct) + "%";
          }
        }
      }
      if (tm.note.empty()) tm.note = fmt_pct(pct) + " vs prior median";
      if (tm.regression) ++series.regressions;
      series.metrics.push_back(std::move(tm));
    }

    report.regressions += series.regressions;
    report.series.push_back(std::move(series));
  }
  return report;
}

std::string format_trend(const TrendReport& report) {
  std::ostringstream os;
  os << "== ledger trend ==\n";
  for (const TrendSeries& s : report.series) {
    os << "-- " << s.kind << ": " << s.label << " (" << s.runs << " run"
       << (s.runs == 1 ? "" : "s") << ")";
    if (s.validity_regression) {
      os << "  REGRESSION: latest run invalid";
    } else if (!s.latest_valid) {
      os << "  [latest invalid]";
    }
    os << "\n";
    for (const TrendMetric& m : s.metrics) {
      os << "   " << m.metric << ":";
      for (double v : m.values) os << " " << obs::format_double(v);
      if (!m.note.empty() && m.note != "insufficient history") {
        os << "  | " << m.note;
      } else if (m.note == "insufficient history") {
        os << "  | (no baseline)";
      }
      if (m.regression) {
        os << "  REGRESSION";
      } else if (m.gated) {
        os << "  ok";
      }
      os << "\n";
    }
  }
  for (const std::string& n : report.notes) os << "   note: " << n << "\n";
  os << (report.ok() ? "TREND OK" : "TREND REGRESSIONS: ")
     << (report.ok() ? std::string() : std::to_string(report.regressions))
     << "\n";
  return os.str();
}

std::string format_history(const std::vector<LedgerEntry>& entries,
                           const std::string& label) {
  static const char* kKeyOrder[] = {"achieved_freq_ghz", "power_uw",
                                    "wirelength_um",     "drv",
                                    "runtime_ms",        "peak_rss_kb"};
  std::ostringstream os;
  int shown = 0;
  for (const LedgerEntry& e : entries) {
    if (!label.empty() && e.label != label) continue;
    ++shown;
    os << "[" << e.timestamp_s << "] " << e.kind << " '" << e.label << "'"
       << " host=" << (e.host.empty() ? "?" : e.host)
       << " threads=" << e.threads << " valid=" << (e.valid ? 1 : 0);
    for (const char* key : kKeyOrder) {
      auto it = e.metrics.find(key);
      if (it != e.metrics.end()) {
        os << " " << key << "=" << obs::format_double(it->second);
      }
    }
    for (const auto& [name, v] : e.metrics) {
      bool known = false;
      for (const char* key : kKeyOrder) known |= (name == key);
      if (!known) os << " " << name << "=" << obs::format_double(v);
    }
    os << "\n";
  }
  if (shown == 0) {
    os << "(no ledger entries" << (label.empty() ? "" : " for '" + label + "'")
       << ")\n";
  }
  return os.str();
}

}  // namespace ffet::report
