#include "report/serve_stats.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "report/json.h"

namespace ffet::report {

namespace {

bool set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

long long ll(const json::Value& obj, const char* key) {
  return static_cast<long long>(obj.member_number(key, 0.0));
}

ServeStatsPhase parse_phase(const json::Value& h) {
  ServeStatsPhase p;
  p.count = ll(h, "count");
  p.sum = h.member_number("sum");
  p.min = h.member_number("min");
  p.max = h.member_number("max");
  p.mean = h.member_number("mean");
  p.p50 = h.member_number("p50");
  p.p95 = h.member_number("p95");
  p.p99 = h.member_number("p99");
  if (const json::Value* buckets = h.find("buckets");
      buckets != nullptr && buckets->is_array()) {
    for (const json::Value& b : buckets->items) {
      if (!b.is_array() || b.items.size() != 2) continue;
      p.buckets.emplace_back(
          b.items[0].number_or(0.0),
          static_cast<long long>(b.items[1].number_or(0.0)));
    }
  }
  return p;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

}  // namespace

std::optional<ServeStatsSnapshot> parse_serve_stats(std::string_view text,
                                                    std::string* error) {
  std::string perr;
  const auto doc = json::parse(text, &perr);
  if (!doc) {
    set_error(error, "malformed snapshot: " + perr);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    set_error(error, "snapshot must be a JSON object");
    return std::nullopt;
  }
  ServeStatsSnapshot snap;
  if (const json::Value* schema = doc->find("schema");
      schema != nullptr && schema->is_string()) {
    snap.schema = schema->str;
  }
  if (snap.schema != "ffet.serve_stats.v1") {
    set_error(error, "not an ffet.serve_stats.v1 snapshot (schema \"" +
                         snap.schema + "\")");
    return std::nullopt;
  }
  snap.pid = ll(*doc, "pid");
  snap.uptime_ms = doc->member_number("uptime_ms");
  snap.workers = static_cast<int>(doc->member_number("workers"));
  snap.queue_depth = ll(*doc, "queue_depth");
  snap.in_flight = ll(*doc, "in_flight");
  snap.cache_entries = ll(*doc, "cache_entries");
  if (const json::Value* counters = doc->find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [key, v] : counters->members) {
      if (v.is_number()) snap.counters[key] = static_cast<long long>(v.number);
    }
  }
  if (const json::Value* latency = doc->find("latency_ms");
      latency != nullptr && latency->is_object()) {
    for (const auto& [key, v] : latency->members) {
      if (!v.is_object()) continue;
      snap.phases[key] = parse_phase(v);
      snap.phase_order.push_back(key);
    }
  }
  if (const json::Value* slots = doc->find("worker_slots");
      slots != nullptr && slots->is_array()) {
    for (const json::Value& sv : slots->items) {
      if (!sv.is_object()) continue;
      ServeStatsSlot s;
      s.slot = static_cast<int>(sv.member_number("slot"));
      s.pid = ll(sv, "pid");
      if (const json::Value* state = sv.find("state");
          state != nullptr && state->is_string()) {
        s.state = state->str;
      }
      if (const json::Value* point = sv.find("point");
          point != nullptr && point->is_string()) {
        s.point = point->str;
      }
      s.jobs = ll(sv, "jobs");
      s.deaths = ll(sv, "deaths");
      s.uptime_ms = sv.member_number("uptime_ms");
      snap.slots.push_back(std::move(s));
    }
  }
  return snap;
}

std::string format_serve_stats(const ServeStatsSnapshot& snap) {
  std::string out;
  appendf(out,
          "ffet_serve pid %lld  up %.1f s  %d worker(s)  queue %lld  "
          "in-flight %lld  cache %lld\n",
          snap.pid, snap.uptime_ms / 1000.0, snap.workers, snap.queue_depth,
          snap.in_flight, snap.cache_entries);

  out += "counters:";
  // Fixed narrative order first, then anything a newer daemon added.
  static const char* kKnown[] = {
      "requests",  "points",        "cache_hits",
      "cache_misses", "single_flight_joins", "flow_runs",
      "retries",   "worker_deaths", "worker_restarts",
  };
  for (const char* key : kKnown) {
    if (const auto it = snap.counters.find(key); it != snap.counters.end()) {
      appendf(out, " %s=%lld", key, it->second);
    }
  }
  for (const auto& [key, v] : snap.counters) {
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    if (!known) appendf(out, " %s=%lld", key.c_str(), v);
  }
  out += '\n';

  if (!snap.phase_order.empty()) {
    appendf(out, "latency (ms)  %10s %10s %10s %10s %10s %10s\n", "count",
            "mean", "p50", "p95", "p99", "max");
    for (const std::string& key : snap.phase_order) {
      const ServeStatsPhase& p = snap.phases.at(key);
      appendf(out, "  %-12s%10lld %10.3f %10.3f %10.3f %10.3f %10.3f\n",
              key.c_str(), p.count, p.mean, p.p50, p.p95, p.p99, p.max);
    }
  }

  for (const ServeStatsSlot& s : snap.slots) {
    appendf(out, "worker slot %d: pid %lld %-7s jobs=%lld deaths=%lld up "
            "%.1f s", s.slot, s.pid, s.state.c_str(), s.jobs, s.deaths,
            s.uptime_ms / 1000.0);
    if (!s.point.empty()) {
      out += "  point ";
      out += s.point;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ffet::report
