// json.h — minimal JSON value model + parser for the reporting layer.
//
// The QoR diff engine reads back what the repo's own emitters write: the
// flow-report JSONL (src/flow/report_json), BENCH_eco.json and
// BENCH_router.json (bench/).  Those are plain JSON, so the reader is a
// small recursive-descent parser with no external dependency — objects
// keep member order (the emitters are deterministic, and order-preserving
// reads make round-trip tests exact), numbers parse with std::from_chars
// (the mirror of the std::to_chars every emitter uses).
//
// Tolerance policy: parse() either returns a full document or nullopt with
// a position-annotated error — malformed-line tolerance (skip and count)
// is the *caller's* job (see qor.h), keeping the parser itself strict.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ffet::report::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;  ///< array elements
  /// Object members in document order (duplicate keys kept as written).
  std::vector<std::pair<std::string, Value>> members;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// First member with `key` (objects only); nullptr when absent.
  const Value* find(std::string_view key) const;

  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  bool bool_or(bool fallback) const { return is_bool() ? boolean : fallback; }

  /// Convenience for nested lookups: member `key`'s number, or `fallback`
  /// when the member is absent or not a number.
  double member_number(std::string_view key, double fallback = 0.0) const;
};

/// Parse one complete JSON document (leading/trailing whitespace allowed;
/// any other trailing bytes are an error).  On failure returns nullopt and,
/// when `error` is non-null, a message with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace ffet::report::json
