#include "report/qor.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>

namespace ffet::report {

namespace {

double map_get(const std::map<std::string, double>& m, const std::string& k,
               double fallback = 0.0) {
  const auto it = m.find(k);
  return it == m.end() ? fallback : it->second;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
}

/// Read numeric members of a JSON object into a map (bools as 0/1);
/// anything else counts as an unknown field.
void read_number_map(const json::Value& obj, std::map<std::string, double>& m,
                     ReadStats* stats) {
  for (const auto& [k, v] : obj.members) {
    if (v.is_number()) {
      m[k] = v.number;
    } else if (v.is_bool()) {
      m[k] = v.boolean ? 1.0 : 0.0;
    } else if (stats) {
      ++stats->unknown_fields;
    }
  }
}

}  // namespace

double FlowRecord::total_wall_ms() const {
  double t = 0.0;
  for (const StageTime& s : stages) t += s.wall_ms;
  return t;
}

double FlowRecord::total_cpu_ms() const {
  double t = 0.0;
  for (const StageTime& s : stages) t += s.cpu_ms;
  return t;
}

std::vector<FlowRecord> read_flow_reports(std::istream& is, ReadStats* stats) {
  std::vector<FlowRecord> out;
  std::string line;
  while (std::getline(is, line)) {
    // Tolerate blank lines and whitespace-only padding between records.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (stats) ++stats->lines;
    const auto doc = json::parse(line);
    if (!doc || !doc->is_object()) {
      if (stats) ++stats->malformed;
      continue;
    }
    FlowRecord rec;
    for (const auto& [key, v] : doc->members) {
      if (key == "schema" && v.is_string()) {
        rec.schema = v.str;
      } else if (key == "label" && v.is_string()) {
        rec.label = v.str;
      } else if (key == "tech" && v.is_string()) {
        rec.tech = v.str;
      } else if (key == "invalid_reason" && v.is_string()) {
        rec.invalid_reason = v.str;
      } else if (key == "valid" && v.is_bool()) {
        rec.valid = v.boolean;
      } else if ((key == "front_layers" || key == "back_layers" ||
                  key == "backside_input_fraction" ||
                  key == "target_freq_ghz" || key == "target_utilization" ||
                  key == "seed") &&
                 v.is_number()) {
        rec.config[key] = v.number;
      } else if (key == "diagnostics" && v.is_object()) {
        read_number_map(v, rec.diagnostics, stats);
      } else if (key == "ppa" && v.is_object()) {
        read_number_map(v, rec.ppa, stats);
      } else if (key == "eco" && v.is_object()) {
        rec.has_eco = true;
        read_number_map(v, rec.eco, stats);
      } else if (key == "metrics" && v.is_object()) {
        read_number_map(v, rec.metrics, stats);
      } else if (key == "resource" && v.is_object()) {
        read_number_map(v, rec.resource, stats);
      } else if (key == "serve" && v.is_object()) {
        read_number_map(v, rec.serve, stats);
      } else if (key == "stages" && v.is_array()) {
        for (const json::Value& sv : v.items) {
          if (!sv.is_object()) continue;
          StageTime st;
          if (const json::Value* name = sv.find("stage");
              name && name->is_string()) {
            st.stage = name->str;
          }
          st.wall_ms = sv.member_number("wall_ms");
          st.cpu_ms = sv.member_number("cpu_ms");
          st.rss_delta_kb = sv.member_number("rss_delta_kb");
          rec.stages.push_back(std::move(st));
        }
      } else if (v.is_number()) {
        // Unknown numeric field from a newer schema: keep it diffable.
        rec.extra[key] = v.number;
      } else if (v.is_bool()) {
        rec.extra[key] = v.boolean ? 1.0 : 0.0;
      } else if (stats) {
        ++stats->unknown_fields;
      }
    }
    if (stats) ++stats->parsed;
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<FlowRecord> read_flow_reports_file(const std::string& path,
                                               ReadStats* stats,
                                               std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return {};
  }
  return read_flow_reports(f, stats);
}

namespace {

/// Threshold gating by fully-qualified metric name; fills Delta::regression
/// and the explanatory note for the handful of direction-aware KPI gates.
void apply_gate(Delta& d, const DiffOptions& o) {
  const bool has_base = d.base != 0.0;
  const double rise_pct =
      has_base ? (d.now - d.base) / d.base * 100.0 : 0.0;
  if (d.metric == "ppa.achieved_freq_ghz") {
    if (o.freq_drop_pct >= 0.0 && has_base && -rise_pct > o.freq_drop_pct) {
      d.regression = true;
      d.note = "frequency dropped " + fmt(-rise_pct) + "% (threshold " +
               fmt(o.freq_drop_pct) + "%)";
    }
  } else if (d.metric == "ppa.power_uw") {
    if (o.power_rise_pct >= 0.0 && has_base && rise_pct > o.power_rise_pct) {
      d.regression = true;
      d.note = "power rose " + fmt(rise_pct) + "% (threshold " +
               fmt(o.power_rise_pct) + "%)";
    }
  } else if (d.metric == "ppa.wirelength_total_um") {
    if (o.wirelength_rise_pct >= 0.0 && has_base &&
        rise_pct > o.wirelength_rise_pct) {
      d.regression = true;
      d.note = "wirelength rose " + fmt(rise_pct) + "% (threshold " +
               fmt(o.wirelength_rise_pct) + "%)";
    }
  } else if (d.metric == "stages.total_wall_ms") {
    if (o.runtime_rise_pct >= 0.0 && has_base &&
        rise_pct > o.runtime_rise_pct) {
      d.regression = true;
      d.note = "runtime rose " + fmt(rise_pct) + "% (threshold " +
               fmt(o.runtime_rise_pct) + "%)";
    }
  } else if (d.metric == "diagnostics.drv") {
    if (o.gate_drv && d.now > d.base) {
      d.regression = true;
      d.note = "DRV count increased";
    }
  }
}

void push_delta(DiffReport& rep, Delta d, const DiffOptions& o) {
  apply_gate(d, o);
  // QoR-identity mode: every delta that made it this far is on a compared
  // (QoR) section, and exact equality is the contract.
  if (o.qor_only && !d.regression) {
    d.regression = true;
    if (d.note.empty()) d.note = "QoR values differ (identity gate)";
  }
  if (d.regression) ++rep.regressions;
  rep.deltas.push_back(std::move(d));
}

/// Merge-walk two sorted maps; every differing or one-sided key becomes a
/// Delta.  Exact (bitwise) comparison: identical records diff empty.
void diff_maps(const std::string& label, const std::string& prefix,
               const std::map<std::string, double>& base,
               const std::map<std::string, double>& now,
               const DiffOptions& o, DiffReport& rep) {
  auto bi = base.begin();
  auto ni = now.begin();
  while (bi != base.end() || ni != now.end()) {
    if (ni == now.end() || (bi != base.end() && bi->first < ni->first)) {
      Delta d{label, prefix + bi->first, bi->second, 0.0, false,
              "only in base"};
      push_delta(rep, std::move(d), o);
      ++bi;
    } else if (bi == base.end() || ni->first < bi->first) {
      Delta d{label, prefix + ni->first, 0.0, ni->second, false,
              "only in new"};
      push_delta(rep, std::move(d), o);
      ++ni;
    } else {
      if (bi->second != ni->second) {
        Delta d{label, prefix + bi->first, bi->second, ni->second, false, ""};
        push_delta(rep, std::move(d), o);
      }
      ++bi;
      ++ni;
    }
  }
}

void diff_pair(const FlowRecord& b, const FlowRecord& n, const DiffOptions& o,
               DiffReport& rep) {
  const std::string label =
      b.label == n.label ? n.label : b.label + " -> " + n.label;

  if (b.valid != n.valid) {
    Delta d{label, "valid", b.valid ? 1.0 : 0.0, n.valid ? 1.0 : 0.0, false,
            ""};
    if (o.gate_validity && b.valid && !n.valid) {
      d.regression = true;
      d.note = "run became invalid: " + n.invalid_reason;
    }
    push_delta(rep, std::move(d), o);
  }

  diff_maps(label, "config.", b.config, n.config, o, rep);
  diff_maps(label, "diagnostics.", b.diagnostics, n.diagnostics, o, rep);
  diff_maps(label, "ppa.", b.ppa, n.ppa, o, rep);
  diff_maps(label, "eco.", b.eco, n.eco, o, rep);
  if (!o.qor_only) {
    diff_maps(label, "metrics.", b.metrics, n.metrics, o, rep);
    diff_maps(label, "resource.", b.resource, n.resource, o, rep);
    // Serve attribution is service latency, not QoR: reported so drift is
    // visible, never matched by a gate (apply_gate names no serve.*), and
    // skipped entirely in --qor identity mode — a cached resubmit must
    // compare clean against the run that produced it.
    diff_maps(label, "serve.", b.serve, n.serve, o, rep);
    diff_maps(label, "extra.", b.extra, n.extra, o, rep);
  }

  // Total wirelength carries the gate (one side may legitimately shrink
  // while the other grows — only the sum is a QoR).
  const double b_wl = map_get(b.ppa, "wirelength_front_um") +
                      map_get(b.ppa, "wirelength_back_um");
  const double n_wl = map_get(n.ppa, "wirelength_front_um") +
                      map_get(n.ppa, "wirelength_back_um");
  if (b_wl != n_wl) {
    push_delta(rep, {label, "ppa.wirelength_total_um", b_wl, n_wl, false, ""},
               o);
  }

  // Stage timings: aggregate first (the gated number), then per-stage wall
  // deltas matched by stage name (first occurrence wins).  Skipped in
  // QoR-identity mode — wall/CPU time is never QoR.
  if (!o.qor_only) {
    if (b.total_wall_ms() != n.total_wall_ms()) {
      push_delta(
          rep,
          {label, "stages.total_wall_ms", b.total_wall_ms(), n.total_wall_ms(),
           false, ""},
          o);
    }
    if (b.total_cpu_ms() != n.total_cpu_ms()) {
      push_delta(
          rep,
          {label, "stages.total_cpu_ms", b.total_cpu_ms(), n.total_cpu_ms(),
           false, ""},
          o);
    }
    std::map<std::string, double> b_stage, n_stage;
    for (const StageTime& s : b.stages) b_stage.emplace(s.stage, s.wall_ms);
    for (const StageTime& s : n.stages) n_stage.emplace(s.stage, s.wall_ms);
    diff_maps(label, "stage_wall_ms.", b_stage, n_stage, o, rep);
  }

  // ECO accept-rule self-check on the new record: the transform loop must
  // never end slower than it started (the revert path's contract).
  if (n.has_eco) {
    const double pre = map_get(n.eco, "pre_freq_ghz");
    const double post = map_get(n.eco, "post_freq_ghz");
    if (post < pre) {
      Delta d{label, "eco.post_vs_pre_freq_ghz", pre, post, true,
              "post-ECO frequency below pre-ECO (revert path broken?)"};
      ++rep.regressions;
      rep.deltas.push_back(std::move(d));
    }
  }
}

}  // namespace

DiffReport diff_flow_reports(const std::vector<FlowRecord>& base,
                             const std::vector<FlowRecord>& now,
                             const DiffOptions& options) {
  DiffReport rep;
  if (base.size() == now.size()) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (base[i].label != now[i].label) {
        rep.notes.push_back("pair " + std::to_string(i) + ": label \"" +
                            base[i].label + "\" vs \"" + now[i].label +
                            "\" (compared index-wise)");
      }
      ++rep.pairs;
      diff_pair(base[i], now[i], options, rep);
    }
    return rep;
  }

  rep.notes.push_back("record counts differ (" + std::to_string(base.size()) +
                      " vs " + std::to_string(now.size()) +
                      "); pairing by label");
  std::map<std::string, const FlowRecord*> bmap, nmap;
  for (const FlowRecord& r : base) bmap[r.label] = &r;  // last wins
  for (const FlowRecord& r : now) nmap[r.label] = &r;
  for (const auto& [label, b] : bmap) {
    const auto it = nmap.find(label);
    if (it == nmap.end()) {
      rep.notes.push_back("only in base: \"" + label + "\"");
      continue;
    }
    ++rep.pairs;
    diff_pair(*b, *it->second, options, rep);
  }
  for (const auto& [label, n] : nmap) {
    (void)n;
    if (bmap.find(label) == bmap.end()) {
      rep.notes.push_back("only in new: \"" + label + "\"");
    }
  }
  return rep;
}

std::string format_diff(const DiffReport& rep) {
  std::string out;
  appendf(out, "QoR diff: %d pair(s), %zu delta(s), %d regression(s)\n",
          rep.pairs, rep.deltas.size(), rep.regressions);
  for (const std::string& n : rep.notes) out += "  note: " + n + "\n";

  std::string current_label;
  bool first_label = true;
  for (const Delta& d : rep.deltas) {
    if (first_label || d.label != current_label) {
      current_label = d.label;
      first_label = false;
      out += "\n[" + current_label + "]\n";
    }
    const double diff = d.now - d.base;
    std::string pct;
    if (d.base != 0.0) {
      pct = " (" + fmt(diff / d.base * 100.0) + "%)";
    }
    appendf(out, "  %-34s %s -> %s  %s%s%s", d.metric.c_str(),
            fmt(d.base).c_str(), fmt(d.now).c_str(),
            (diff >= 0 ? "+" : ""), fmt(diff).c_str(), pct.c_str());
    if (d.regression) {
      out += "  REGRESSION: " + d.note;
    } else if (!d.note.empty()) {
      out += "  [" + d.note + "]";
    }
    out += "\n";
  }

  if (rep.deltas.empty()) out += "  (no differences)\n";
  out += rep.ok() ? "\nOK: no threshold regressions\n"
                  : "\nFAIL: QoR regression gate\n";
  return out;
}

namespace {

/// Fetch obj[a][b] (or obj[a] with b == nullptr) as a number; records the
/// dotted path in `missing` when absent or non-numeric.
double need_num(const json::Value& obj, const char* a, const char* b,
                std::vector<std::string>& missing) {
  const json::Value* v = obj.find(a);
  if (v && b) v = v->find(b);
  if (!v || !v->is_number()) {
    missing.push_back(b ? std::string(a) + "." + b : std::string(a));
    return 0.0;
  }
  return v->number;
}

}  // namespace

int eco_gate(const json::Value& base, const json::Value& now,
             std::string& out) {
  if (!base.is_object() || !now.is_object()) {
    out += "malformed bench_eco JSON (expected objects)\n";
    return 2;
  }
  std::vector<std::string> missing;
  const double b_pre_f = need_num(base, "pre", "freq_ghz", missing);
  const double b_post_f = need_num(base, "post", "freq_ghz", missing);
  const double b_gain = need_num(base, "freq_gain_pct", nullptr, missing);
  const double b_iso = need_num(base, "iso_power_increase_pct", nullptr, missing);
  const double b_speedup = need_num(base, "sta_speedup", nullptr, missing);
  const double b_passes = need_num(base, "eco_passes", nullptr, missing);
  const double n_pre_f = need_num(now, "pre", "freq_ghz", missing);
  const double n_post_f = need_num(now, "post", "freq_ghz", missing);
  const double n_gain = need_num(now, "freq_gain_pct", nullptr, missing);
  const double n_iso_pct = need_num(now, "iso_power_increase_pct", nullptr, missing);
  const double n_speedup = need_num(now, "sta_speedup", nullptr, missing);
  const double n_passes = need_num(now, "eco_passes", nullptr, missing);
  const double n_pre_power = need_num(now, "pre", "power_uw", missing);
  const double n_iso_power = need_num(now, "post", "iso_power_uw", missing);
  if (!missing.empty()) {
    out += "malformed bench_eco JSON; missing fields:\n";
    for (const std::string& m : missing) out += "  - " + m + "\n";
    return 2;
  }

  appendf(out,
          "baseline (eco_passes=%.0f): %.3f -> %.3f GHz (%+.1f%%), "
          "iso power %+.2f%%, STA speedup %.2fx\n",
          b_passes, b_pre_f, b_post_f, b_gain, b_iso, b_speedup);
  appendf(out,
          "new      (eco_passes=%.0f): %.3f -> %.3f GHz (%+.1f%%), "
          "iso power %+.2f%%, STA speedup %.2fx\n",
          n_passes, n_pre_f, n_post_f, n_gain, n_iso_pct, n_speedup);
  appendf(out,
          "new transforms: %.0f attempted, %.0f accepted (%.0f upsize, "
          "%.0f downsize, %.0f repeater, %.0f pin-flip), %.0f reverted\n",
          now.member_number("attempted"), now.member_number("accepted"),
          now.member_number("upsized"), now.member_number("downsized"),
          now.member_number("buffers"), now.member_number("pin_flips"),
          now.member_number("reverted"));

  constexpr double kIsoPowerTolerance = 0.01;  // <= 1 % rise at iso frequency
  std::vector<std::string> failures;
  if (n_post_f < n_pre_f) {
    failures.push_back("post-ECO freq " + fmt(n_post_f) +
                       " GHz below pre-ECO " + fmt(n_pre_f) +
                       " GHz (revert path broken?)");
  }
  const double iso_limit = (1.0 + kIsoPowerTolerance) * n_pre_power;
  if (n_iso_power > iso_limit) {
    failures.push_back("iso-frequency power " + fmt(n_iso_power) +
                       " uW exceeds " + fmt(iso_limit) + " uW (pre " +
                       fmt(n_pre_power) + " uW + 1%)");
  }
  if (n_speedup < 1.0) {
    failures.push_back("incremental STA slower than full re-analysis "
                       "(speedup " + fmt(n_speedup) + "x < 1)");
  }
  const json::Value* gates_ok = now.find("gates_ok");
  if (!gates_ok || !gates_ok->bool_or(false)) {
    failures.push_back("gates_ok=false: the bench's in-process gates failed");
  }

  if (!failures.empty()) {
    out += "\nFAIL: bench_eco gate\n";
    for (const std::string& f : failures) out += "  - " + f + "\n";
    return 1;
  }
  out += "\nOK: ECO improves frequency within the power budget and the "
         "incremental STA beats full re-analysis\n";
  return 0;
}

int router_gate(const json::Value& base, const json::Value& now,
                std::string& out) {
  const json::Value* b_cfgs = base.find("configs");
  const json::Value* n_cfgs = now.find("configs");
  if (!b_cfgs || !b_cfgs->is_array() || !n_cfgs || !n_cfgs->is_array()) {
    out += "malformed bench_router JSON (expected a \"configs\" array)\n";
    return 2;
  }
  constexpr double kTolerance = 0.20;  // >20 % regression fails

  std::vector<std::string> failures;
  const json::Value* qor = now.find("qor_ok");
  if (!qor || !qor->bool_or(false)) {
    failures.push_back("qor_ok=false: A* worse than legacy on overflow/WL");
  }

  // Configs are keyed by gcell_tracks plus the regime label: two tracks=10
  // configs exist (congested / stress), and a baseline written before the
  // label field existed still keys uniquely by tracks alone ("" label).
  auto cfg_key = [](const json::Value& c) {
    std::string key =
        std::to_string(static_cast<long>(c.member_number("gcell_tracks")));
    if (const json::Value* l = c.find("label"); l && l->is_string()) {
      key += ":" + l->str;
    }
    return key;
  };
  std::map<std::string, const json::Value*> new_by_cfg;
  for (const json::Value& c : n_cfgs->items) new_by_cfg[cfg_key(c)] = &c;
  std::map<std::string, const json::Value*> base_by_cfg;
  for (const json::Value& c : b_cfgs->items) base_by_cfg[cfg_key(c)] = &c;

  // Ratio-vs-baseline checks: per-route search effort (machine
  // independent) at most +20 %, normalized engine-vs-engine speedups at
  // most -20 %.  The stage-2 fields are skipped when a pre-stage-2
  // baseline lacks them.
  auto check_ratio = [&](const std::string& key, const json::Value& b,
                         const json::Value& n, const char* field,
                         bool regress_is_up) {
    const json::Value* bf = b.find(field);
    const json::Value* nf = n.find(field);
    if (!bf || !bf->is_number() || !nf || !nf->is_number()) return;
    const double bv = bf->number;
    const double nv = nf->number;
    const double ratio = bv > 0 ? nv / bv : 1.0;
    appendf(out, "%s: %s %.2f -> %.2f (%+.1f%%)\n", key.c_str(), field, bv,
            nv, (ratio - 1.0) * 100.0);
    const bool fail = regress_is_up ? ratio > 1.0 + kTolerance
                                    : ratio < 1.0 - kTolerance;
    if (fail) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s: %s regressed %.1f%% (> 20%%)",
                    key.c_str(), field,
                    std::fabs(ratio - 1.0) * 100.0);
      failures.push_back(buf);
    }
  };
  for (const auto& [key, b] : base_by_cfg) {
    const auto it = new_by_cfg.find(key);
    if (it == new_by_cfg.end()) {
      failures.push_back(key + ": missing from new run");
      continue;
    }
    const json::Value& n = *it->second;
    check_ratio(key, *b, n, "astar_settled_per_route", true);
    check_ratio(key, *b, n, "astar2_settled_per_route", true);
    check_ratio(key, *b, n, "speedup", false);
    check_ratio(key, *b, n, "speedup2", false);
  }

  // Absolute floor, independent of the baseline: at every congested
  // config the stage-2 engine must keep >= 1.8x over stage 1.
  for (const auto& [key, n] : new_by_cfg) {
    if (!n->find("congested") || !n->find("congested")->bool_or(false)) {
      continue;
    }
    const double speedup2 = n->member_number("speedup2");
    appendf(out, "%s: congested speedup2 %.2fx (floor 1.80x)\n", key.c_str(),
            speedup2);
    if (speedup2 < 1.8) {
      failures.push_back(key + ": congested stage-2 speedup below 1.8x");
    }
  }

  if (!failures.empty()) {
    out += "\nFAIL: bench_router regression gate\n";
    for (const std::string& f : failures) out += "  - " + f + "\n";
    return 1;
  }
  out += "\nOK: bench_router within tolerance of the committed baseline\n";
  return 0;
}

}  // namespace ffet::report
