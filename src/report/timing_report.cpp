#include "report/timing_report.h"

#include <cstdio>

namespace ffet::report {

namespace {

using netlist::InstId;
using netlist::NetId;
using stdcell::PinDir;
using stdcell::PinSide;

NetId output_net_of(const netlist::Netlist& nl, InstId id) {
  const auto& pins = nl.instance(id).type->pins();
  for (std::size_t p = 0; p < pins.size(); ++p) {
    if (pins[p].dir == PinDir::Output && nl.pin_net(id, p) != netlist::kNoNet) {
      return nl.pin_net(id, p);
    }
  }
  return netlist::kNoNet;
}

const char* side_str(PinSide s) {
  switch (s) {
    case PinSide::Front: return "F";
    case PinSide::Back: return "B";
    case PinSide::Both: return "F+B";
  }
  return "?";
}

}  // namespace

std::vector<TimingPath> build_timing_paths(
    const sta::Sta& sta, const netlist::Netlist& nl,
    const extract::RcNetlist* rc,
    const std::unordered_map<netlist::InstId, double>* clock_latency_ps,
    const TimingReportOptions& options) {
  std::vector<TimingPath> out;
  const std::vector<sta::PathEnd> ends =
      sta.worst_paths(options.top_k, clock_latency_ps);
  if (ends.empty()) return out;

  // Default slack reference: the period at which the worst endpoint has
  // exactly zero slack (slack against the achieved frequency).
  const double period = options.target_period_ps > 0.0
                            ? options.target_period_ps
                            : -sta.endpoint_slack_ps(ends[0], 0.0);

  out.reserve(ends.size());
  for (const sta::PathEnd& e : ends) {
    TimingPath tp;
    tp.end = e;
    tp.endpoint = sta.endpoint_name(e);
    tp.path_ps = e.path_ps;
    tp.slack_ps = sta.endpoint_slack_ps(e, period);
    tp.side_crossings = sta.path_side_crossings(e);
    tp.path_names = sta.path_string(e);

    const std::vector<InstId> path = sta.path_instances(e);
    tp.stages.reserve(path.size());

    // Side-crossing state: tracks the normalized (Both -> Front, the
    // routable-from-front convention of Sta::path_side_crossings) side of
    // the previous stage's data input pin.  The first stage's clock / PI
    // pin does not participate.
    bool have_prev = false;
    PinSide prev = PinSide::Front;
    NetId prev_out = netlist::kNoNet;

    for (std::size_t i = 0; i < path.size(); ++i) {
      const netlist::Instance& inst = nl.instance(path[i]);
      const auto& pins = inst.type->pins();
      const auto pin_nets = nl.pin_nets(path[i]);
      PathStage st;
      st.inst = path[i];
      st.inst_name = nl.instance_name(path[i]);
      st.cell = inst.type->name();
      st.is_endpoint = (i + 1 == path.size());

      if (i == 0) {
        // Launch stage: a flip-flop enters through its clock pin; a
        // PI-fed combinational stage has no named entry pin.
        if (inst.type->sequential()) {
          for (std::size_t p = 0; p < pins.size(); ++p) {
            if (pins[p].dir == PinDir::Clock) {
              st.in_pin = pins[p].name;
              st.in_side = nl.pin_side({path[i], static_cast<int>(p)});
              break;
            }
          }
        }
      } else {
        for (std::size_t p = 0; p < pins.size(); ++p) {
          if (pin_nets[p] != prev_out) continue;
          if (pins[p].dir == PinDir::Output) continue;
          st.in_pin = pins[p].name;
          st.in_side = nl.pin_side({path[i], static_cast<int>(p)});
          PinSide s = st.in_side;
          if (s == PinSide::Both) s = PinSide::Front;
          st.crossing = have_prev && s != prev;
          prev = s;
          have_prev = true;
          break;
        }
      }

      const NetId out_net = output_net_of(nl, path[i]);
      // A flip-flop endpoint row reports its D arrival, not its Q output.
      if (st.is_endpoint && !e.is_port) {
        st.arrival_ps = e.path_ps;
      } else {
        st.arrival_ps = st.is_endpoint ? e.path_ps
                                       : sta.arrival_ps()[static_cast<std::size_t>(
                                             path[i])];
        st.slew_ps = sta.slew_ps()[static_cast<std::size_t>(path[i])];
        if (out_net != netlist::kNoNet) {
          st.has_output = true;
          st.fanout = static_cast<int>(nl.net(out_net).sinks.size());
          if (rc && static_cast<std::size_t>(out_net) < rc->num_trees()) {
            st.load_ff = rc->span_of(out_net).total_cap_ff;
          }
          for (std::size_t p = 0; p < pins.size(); ++p) {
            if (pins[p].dir == PinDir::Output &&
                pin_nets[p] == out_net) {
              st.out_side = nl.pin_side({path[i], static_cast<int>(p)});
              break;
            }
          }
        }
      }
      prev_out = out_net;
      tp.stages.push_back(std::move(st));
    }
    out.push_back(std::move(tp));
  }
  return out;
}

std::string format_timing_report(const std::vector<TimingPath>& paths,
                                 double target_period_ps) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "Timing report: top %zu endpoint paths, slack at period "
                "%.2f ps (%.3f GHz)\n",
                paths.size(), target_period_ps,
                target_period_ps > 0 ? 1000.0 / target_period_ps : 0.0);
  out += buf;

  int idx = 0;
  for (const TimingPath& tp : paths) {
    ++idx;
    std::snprintf(buf, sizeof(buf),
                  "\nPath %d: endpoint=%s  data=%.2f ps  slack=%+.2f ps  "
                  "side-crossings=%d\n",
                  idx, tp.endpoint.c_str(), tp.path_ps, tp.slack_ps,
                  tp.side_crossings);
    out += buf;
    out += "  path: " + tp.path_names + "\n";
    out += "    #  instance              cell        in    side  "
           "arrival     slew  load(fF)  fanout  out\n";
    int sno = 0;
    for (const PathStage& st : tp.stages) {
      std::string side = st.in_pin.empty() ? "-" : side_str(st.in_side);
      if (st.crossing) side += "*";
      std::snprintf(buf, sizeof(buf), "  %3d  %-20s  %-10s  %-4s  %-5s %8.2f",
                    sno++, st.inst_name.c_str(), st.cell.c_str(),
                    st.in_pin.empty() ? "-" : st.in_pin.c_str(), side.c_str(),
                    st.arrival_ps);
      out += buf;
      if (st.is_endpoint && !st.has_output) {
        out += "        -         -       -    -";
      } else {
        std::snprintf(buf, sizeof(buf), " %8.2f  %8.3f  %6d  %-3s",
                      st.slew_ps, st.load_ff, st.fanout,
                      st.has_output ? side_str(st.out_side) : "-");
        out += buf;
      }
      out += "\n";
    }
  }
  out += "\n  * = input pin on the opposite wafer side of the previous "
         "stage's:\n      the hop crosses front<->back through the driver's "
         "dual-sided\n      Drain-Merge output pin.\n";
  return out;
}

}  // namespace ffet::report
