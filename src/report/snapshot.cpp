#include "report/snapshot.h"

#include "opt/eco.h"
#include "runtime/thread_pool.h"
#include "synth/synth.h"

namespace ffet::report {

std::unique_ptr<Snapshot> build_snapshot(const flow::FlowConfig& config) {
  auto snap = std::make_unique<Snapshot>(config, flow::prepare_design(config));
  const flow::DesignContext& ctx = *snap->ctx;
  netlist::Netlist& nl = snap->nl;
  const int threads = runtime::resolve_threads(config.threads);

  // Stage sequence mirrors flow::run_physical exactly (see snapshot.h).
  pnr::FloorplanOptions fo;
  fo.target_utilization = config.utilization;
  fo.aspect_ratio = config.aspect_ratio;
  snap->fp = pnr::make_floorplan(nl, ctx.tech(), fo);

  snap->pp = pnr::build_power_plan(nl, snap->fp, *ctx.library);

  pnr::PlacementOptions po;
  po.seed = config.seed;
  snap->placement = pnr::place(nl, snap->fp, snap->pp, po);

  snap->cts = pnr::build_clock_tree(nl, snap->fp);
  synth::fix_hold(nl, snap->cts.sink_latency_ps);

  pnr::RouteOptions ro;
  ro.threads = threads;
  snap->routes = pnr::route_design(nl, snap->fp, ro);

  snap->merged =
      io::merge_defs(io::build_def(nl, snap->routes, tech::Side::Front),
                     io::build_def(nl, snap->routes, tech::Side::Back));
  snap->rc = extract::extract_rc(snap->merged, nl, ctx.tech(), threads);

  snap->sta_options.clock_skew_ps = snap->cts.skew_ps;
  snap->sta_options.pi_reference_latency_ps = snap->cts.mean_latency_ps;
  snap->sta_options.threads = threads;

  if (config.eco_passes > 0 && snap->placement.legal && snap->routes.valid) {
    opt::EcoOptions eo;
    eo.passes = config.eco_passes;
    eo.threads = threads;
    eo.sta = snap->sta_options;
    eo.route = ro;
    opt::run_eco(nl, snap->fp, snap->pp, snap->routes, snap->rc,
                 snap->cts.sink_latency_ps, eo);
    // The flow re-signs off on a fresh merge + full extraction; keep the
    // snapshot on the same data.
    snap->merged =
        io::merge_defs(io::build_def(nl, snap->routes, tech::Side::Front),
                       io::build_def(nl, snap->routes, tech::Side::Back));
    snap->rc = extract::extract_rc(snap->merged, nl, ctx.tech(), threads);
    snap->eco_ran = true;
  }
  return snap;
}

}  // namespace ffet::report
