// qor.h — QoR regression layer: flow-report reader + run-to-run diff.
//
// Three pieces:
//
//   * a reader for the "ffet.flow_report.v1" JSONL the flow appends to
//     FFET_FLOW_REPORT (src/flow/report_json) — tolerant of malformed
//     lines (skipped and counted) and of unknown fields (kept numerically
//     or counted, never fatal), so old binaries can read reports from
//     newer schemas;
//   * a diff engine comparing two report sets metric-by-metric
//     (frequency, power, wirelength, route convergence, stage wall/CPU,
//     eco counters) with configurable regression thresholds — a self-diff
//     of one file yields zero deltas and passes;
//   * the bench gates CI previously ran as two Python scripts
//     (check_bench_eco.py / check_bench_router.py), ported so
//     `ffet_report diff --mode eco|router` is the single gate binary.

#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "report/json.h"

namespace ffet::report {

/// One stage timing entry from a flow report's "stages" array.
struct StageTime {
  std::string stage;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  double rss_delta_kb = 0.0;  ///< resident-set growth (0 when probe off)
};

/// One parsed flow-report line.  Numeric fields land in per-section maps so
/// the diff engine can walk them uniformly; fields this reader does not
/// know by name are preserved in `extra` (numbers/bools) or counted in
/// ReadStats::unknown_fields (anything else) — forward compatibility.
struct FlowRecord {
  std::string schema;
  std::string label;
  std::string tech;
  std::string invalid_reason;
  bool valid = false;
  bool has_eco = false;  ///< the line carried an "eco" section

  std::map<std::string, double> config;       ///< layer counts, targets, seed
  std::map<std::string, double> diagnostics;  ///< convergence / quality
  std::map<std::string, double> ppa;
  std::map<std::string, double> eco;
  std::map<std::string, double> metrics;
  std::map<std::string, double> resource;  ///< peak RSS, faults, sizes
  std::map<std::string, double> serve;  ///< sweep-service latency attribution
  std::map<std::string, double> extra;  ///< unknown numeric top-level fields
  std::vector<StageTime> stages;

  double total_wall_ms() const;
  double total_cpu_ms() const;
};

struct ReadStats {
  int lines = 0;           ///< non-empty lines seen
  int parsed = 0;          ///< lines that became FlowRecords
  int malformed = 0;       ///< lines that failed to parse (skipped)
  int unknown_fields = 0;  ///< non-numeric fields the schema doesn't name
};

/// Read every well-formed report line from `is`; malformed lines are
/// skipped (and counted), so one torn line cannot poison a whole file.
std::vector<FlowRecord> read_flow_reports(std::istream& is,
                                          ReadStats* stats = nullptr);

/// File convenience; on open failure returns empty and sets `error`.
std::vector<FlowRecord> read_flow_reports_file(const std::string& path,
                                               ReadStats* stats = nullptr,
                                               std::string* error = nullptr);

/// Regression thresholds (percent, relative to the baseline value).  A
/// negative threshold disables that gate — the delta is still reported.
struct DiffOptions {
  double freq_drop_pct = 1.0;      ///< achieved_freq_ghz may drop this much
  double power_rise_pct = 2.0;     ///< power_uw may rise this much
  double wirelength_rise_pct = 2.0;  ///< front+back total
  double runtime_rise_pct = -1.0;  ///< total stage wall; off by default
  bool gate_drv = true;            ///< any DRV increase is a regression
  bool gate_validity = true;       ///< valid -> invalid is a regression
  /// QoR-identity mode (the gate for results streamed back from the sweep
  /// service): only config / validity / diagnostics / ppa / eco sections
  /// are compared — stage timings, metrics, resource and unknown-field
  /// sections are machine- and run-dependent and are skipped entirely —
  /// and *any* surviving delta is a regression.  Two runs of the same
  /// points pass iff they are bit-identical per point on everything that
  /// is QoR.  `ffet_report diff --qor` sets this.
  bool qor_only = false;
};

/// One changed metric between a paired base/new record.
struct Delta {
  std::string label;   ///< the pair's label
  std::string metric;  ///< e.g. "ppa.achieved_freq_ghz"
  double base = 0.0;
  double now = 0.0;
  bool regression = false;
  std::string note;  ///< gate verdict or "only in base/new"
};

struct DiffReport {
  std::vector<Delta> deltas;       ///< every exact-value change, in pair order
  std::vector<std::string> notes;  ///< pairing / config-change commentary
  int pairs = 0;
  int regressions = 0;
  bool ok() const { return regressions == 0; }
};

/// Compare two report sets.  Records pair index-wise when both sets have
/// the same size (a label mismatch becomes a note — eco runs legitimately
/// relabel with " eco=N"); otherwise by label (last record per label wins,
/// unmatched records become notes).  Values compare exactly: a diff of a
/// file against itself reports zero deltas.
DiffReport diff_flow_reports(const std::vector<FlowRecord>& base,
                             const std::vector<FlowRecord>& now,
                             const DiffOptions& options = {});

std::string format_diff(const DiffReport& report);

/// The bench_eco gate (absolute properties of the new run; baseline printed
/// for context) — the C++ port of scripts/check_bench_eco.py.  Appends the
/// human-readable report to `out`; returns the process exit code
/// (0 pass, 1 fail, 2 malformed input).
int eco_gate(const json::Value& base, const json::Value& now,
             std::string& out);

/// The bench_router gate (>20 % regression vs the committed baseline on
/// machine-portable metrics) — the port of scripts/check_bench_router.py.
int router_gate(const json::Value& base, const json::Value& now,
                std::string& out);

}  // namespace ffet::report
