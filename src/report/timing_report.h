// timing_report.h — multi-path signoff timing reports with wafer-side
// annotations.
//
// Expands the STA's top-K worst endpoints (sta::Sta::worst_paths) into
// stage-by-stage path reports: per pin the arrival, slew, driven load and
// fanout, plus the *wafer side* of every input pin — and an explicit
// crossing marker wherever the path hops front<->back through the driving
// cell's dual-sided Drain-Merge output pin (the only structure crossing
// the wafer, Sec. III.A/III.C).  The paper's Fig. 9 critical paths are
// exactly these reports; the crossing markers make the dual-sided routing
// visible in a classic timing-report format.
//
// The worst path's rendered name chain is bit-identical to
// TimingReport::critical_path (both use the same formatter in src/sta).

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "extract/extract.h"
#include "netlist/netlist.h"
#include "sta/sta.h"

namespace ffet::report {

/// One instance ("stage") along a timing path, driver-first.
struct PathStage {
  netlist::InstId inst = netlist::kNoInst;
  std::string inst_name;
  std::string cell;

  /// Input pin this path enters through: the clock pin for a launching
  /// flip-flop, the data pin fed by the previous stage otherwise; empty for
  /// a PI-fed combinational first stage.
  std::string in_pin;
  stdcell::PinSide in_side = stdcell::PinSide::Front;
  /// This stage's input pin sits on the other wafer side than the previous
  /// stage's — the hop crossed through the driver's Drain Merge.
  bool crossing = false;

  double arrival_ps = 0.0;  ///< worst output arrival (endpoint: path delay)
  double slew_ps = 0.0;     ///< worst output slew (0 on the endpoint row)
  double load_ff = 0.0;     ///< extracted total cap on the output net
  int fanout = 0;           ///< sink pins on the output net
  bool has_output = false;  ///< false on a flip-flop endpoint row
  stdcell::PinSide out_side = stdcell::PinSide::Front;

  bool is_endpoint = false;
};

struct TimingPath {
  sta::PathEnd end;
  std::string endpoint;     ///< "ff_12/D" or "port:dmem_addr"
  double path_ps = 0.0;     ///< unconstrained path delay (PathEnd::path_ps)
  double slack_ps = 0.0;    ///< at the report's target period
  int side_crossings = 0;   ///< == Sta::path_side_crossings
  std::string path_names;   ///< "a -> b -> ..." (worst path: bit-identical
                            ///< to TimingReport::critical_path)
  std::vector<PathStage> stages;
};

struct TimingReportOptions {
  int top_k = 10;
  /// Slack reference.  <= 0 derives the period that puts the worst endpoint
  /// at exactly zero slack (signoff convention: report slacks relative to
  /// the achieved frequency).
  double target_period_ps = 0.0;
};

/// Expand the top-K endpoints of the last analysis into full path reports.
/// `rc` may be null (load columns read 0).  Read-only over all inputs.
std::vector<TimingPath> build_timing_paths(
    const sta::Sta& sta, const netlist::Netlist& nl,
    const extract::RcNetlist* rc,
    const std::unordered_map<netlist::InstId, double>* clock_latency_ps,
    const TimingReportOptions& options = {});

/// Render paths as a classic text timing report (stage tables with side
/// and crossing annotations).  Deterministic.
std::string format_timing_report(const std::vector<TimingPath>& paths,
                                 double target_period_ps);

}  // namespace ffet::report
