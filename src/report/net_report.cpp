#include "report/net_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace ffet::report {

namespace {

void snapshot_histogram(const obs::Histogram& h, const char* name,
                        HistogramSnapshot& out) {
  out.name = name;
  out.count = h.count();
  out.sum = h.sum();
  out.min = out.count ? h.min() : 0.0;
  out.max = out.count ? h.max() : 0.0;
  for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
    out.buckets[static_cast<std::size_t>(i)] = h.bucket(i);
  }
}

void append_histogram(std::string& out, const HistogramSnapshot& h,
                      const char* unit) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-14s n=%llu  min=%.3f  mean=%.3f  max=%.3f %s\n",
                h.name.c_str(), static_cast<unsigned long long>(h.count),
                h.min, h.mean(), h.max, unit);
  out += buf;
  std::uint64_t peak = 0;
  for (const std::uint64_t b : h.buckets) peak = std::max(peak, b);
  if (peak == 0) return;
  for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
    const std::uint64_t n = h.buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    const double lo = obs::Histogram::bucket_lower_bound(i);
    const double hi = obs::Histogram::bucket_lower_bound(i + 1);
    const int bar = static_cast<int>(
        50.0 * static_cast<double>(n) / static_cast<double>(peak) + 0.5);
    std::snprintf(buf, sizeof(buf), "    [%10.3f, %10.3f) %8llu  ", lo,
                  i + 1 >= obs::Histogram::kBuckets ? INFINITY : hi,
                  static_cast<unsigned long long>(n));
    out += buf;
    out.append(static_cast<std::size_t>(std::max(bar, 1)), '#');
    out += "\n";
  }
}

}  // namespace

NetReport build_net_report(const netlist::Netlist& nl, const io::Def& merged,
                           const extract::RcNetlist& rc) {
  NetReport rep;
  const double dbu = static_cast<double>(merged.dbu_per_micron);

  // NetId-indexed DEF lookup (no name-keyed map on the hot path).
  std::vector<const io::DefNet*> def_of(
      static_cast<std::size_t>(nl.num_nets()), nullptr);
  for (const io::DefNet& dn : merged.nets) {
    if (const auto id = nl.find_net(dn.name)) {
      def_of[static_cast<std::size_t>(*id)] = &dn;
    }
  }

  obs::Histogram length_h, cap_h, elmore_h;

  rep.nets.reserve(static_cast<std::size_t>(nl.num_nets()));
  for (netlist::NetId id = 0; id < nl.num_nets(); ++id) {
    const netlist::Net& net = nl.net(id);
    NetAttribution a;
    a.net = id;
    a.name = nl.net_name(id);
    a.is_clock = net.is_clock;
    a.fanout = static_cast<int>(net.sinks.size());

    if (const io::DefNet* dn = def_of[static_cast<std::size_t>(id)]) {
      std::map<std::string, double> per_layer;
      // Distinct layers meeting at a wire endpoint imply a via stack there
      // (front<->back meetings are the Drain-Merge hookup).
      std::map<std::pair<geom::Nm, geom::Nm>,
               std::vector<const std::string*>>
          point_layers;
      for (const io::DefWire& w : dn->wires) {
        const double len_um =
            (std::abs(static_cast<double>(w.to.x - w.from.x)) +
             std::abs(static_cast<double>(w.to.y - w.from.y))) /
            dbu;
        per_layer[w.layer] += len_um;
        if (!w.layer.empty() && w.layer[0] == 'B') {
          a.length_back_um += len_um;
        } else {
          a.length_front_um += len_um;
        }
        for (const geom::Point& p : {w.from, w.to}) {
          auto& layers = point_layers[{p.x, p.y}];
          bool seen = false;
          for (const std::string* l : layers) seen = seen || *l == w.layer;
          if (!seen) layers.push_back(&w.layer);
        }
      }
      for (auto& [layer, um] : per_layer) a.layer_um.emplace_back(layer, um);
      for (const auto& [pt, layers] : point_layers) {
        (void)pt;
        a.vias += static_cast<int>(layers.size()) - 1;
      }
      a.dual_sided = a.length_front_um > 0.0 && a.length_back_um > 0.0;
    }

    if (static_cast<std::size_t>(id) < rc.num_trees()) {
      const extract::RcTreeView tree = rc.tree(id);
      a.total_cap_ff = tree.total_cap_ff;
      a.wire_cap_ff = tree.wire_cap_ff;
      for (const extract::RcNode& n : tree.nodes) a.wire_r_ohm += n.r_ohm;
      for (std::size_t s = 0; s < tree.sink_nodes.size(); ++s) {
        a.worst_elmore_ps = std::max(a.worst_elmore_ps, tree.elmore_to_sink(s));
      }
    }

    rep.total_length_um += a.length_um();
    rep.total_vias += a.vias;
    rep.total_elmore_ps += a.worst_elmore_ps;
    if (a.length_um() > 0.0) length_h.observe(a.length_um());
    cap_h.observe(a.total_cap_ff);
    elmore_h.observe(a.worst_elmore_ps);
    rep.nets.push_back(std::move(a));
  }

  for (NetAttribution& a : rep.nets) {
    a.elmore_share_pct = rep.total_elmore_ps > 0.0
                             ? a.worst_elmore_ps / rep.total_elmore_ps * 100.0
                             : 0.0;
  }

  snapshot_histogram(length_h, "net_length_um", rep.length_hist);
  snapshot_histogram(cap_h, "net_cap_ff", rep.cap_hist);
  snapshot_histogram(elmore_h, "net_elmore_ps", rep.elmore_hist);
  return rep;
}

namespace {

void append_net_line(std::string& out, const NetAttribution& a) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  %-22s %5d  %8.3f %8.3f  %4d %-3s  %8.1f %8.3f  "
                "%8.2f  %5.2f%%%s\n",
                a.name.c_str(), a.fanout, a.length_front_um, a.length_back_um,
                a.vias, a.dual_sided ? "F+B" : (a.length_back_um > 0 ? "B" : "F"),
                a.wire_r_ohm, a.total_cap_ff, a.worst_elmore_ps,
                a.elmore_share_pct, a.is_clock ? "  (clock)" : "");
  out += buf;
}

const char* kNetHeader =
    "  net                     fan   len_F_um len_B_um  vias side"
    "    R_ohm   cap_fF  elmore_ps  share\n";

}  // namespace

std::string format_net_report(const NetReport& rep, int top_n) {
  std::string out;
  char buf[256];
  int routed = 0, dual = 0;
  for (const NetAttribution& a : rep.nets) {
    if (a.length_um() > 0.0) ++routed;
    if (a.dual_sided) ++dual;
  }
  std::snprintf(buf, sizeof(buf),
                "Net attribution: %zu nets (%d routed, %d dual-sided), "
                "%.1f um total, %d vias, %.1f ps summed worst-Elmore\n",
                rep.nets.size(), routed, dual, rep.total_length_um,
                rep.total_vias, rep.total_elmore_ps);
  out += buf;

  out += "\nHistograms (base-2 log buckets):\n";
  append_histogram(out, rep.length_hist, "um");
  append_histogram(out, rep.cap_hist, "fF");
  append_histogram(out, rep.elmore_hist, "ps");

  std::vector<const NetAttribution*> order;
  order.reserve(rep.nets.size());
  for (const NetAttribution& a : rep.nets) order.push_back(&a);
  std::sort(order.begin(), order.end(),
            [](const NetAttribution* x, const NetAttribution* y) {
              if (x->worst_elmore_ps != y->worst_elmore_ps) {
                return x->worst_elmore_ps > y->worst_elmore_ps;
              }
              return x->net < y->net;
            });

  std::snprintf(buf, sizeof(buf), "\nTop %d nets by worst sink Elmore:\n",
                top_n);
  out += buf;
  out += kNetHeader;
  for (int i = 0; i < top_n && i < static_cast<int>(order.size()); ++i) {
    append_net_line(out, *order[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::string format_net_detail(const NetReport& rep,
                              const std::string& net_name) {
  for (const NetAttribution& a : rep.nets) {
    if (a.name != net_name) continue;
    std::string out = "Net " + a.name + ":\n";
    out += kNetHeader;
    append_net_line(out, a);
    if (!a.layer_um.empty()) {
      out += "  per-layer routed length:\n";
      for (const auto& [layer, um] : a.layer_um) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "    %-6s %10.3f um\n", layer.c_str(),
                      um);
        out += buf;
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  wire cap: %.3f fF of %.3f fF total\n",
                  a.wire_cap_ff, a.total_cap_ff);
    out += buf;
    return out;
  }
  return "net \"" + net_name + "\" not found\n";
}

}  // namespace ffet::report
