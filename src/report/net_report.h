// net_report.h — per-net attribution over the routed, extracted design.
//
// For every net: routed length split by wafer side and by layer, via
// count, extracted wire R / total C, the worst sink Elmore delay and its
// share of the design-wide Elmore total — plus design-level log-bucket
// histograms (net length, capacitance, Elmore) built with the obs
// histogram machinery.  Everything derives from the *merged* DEF (the
// paper's StarRC input) and the RC netlist; building a report never
// mutates either.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "extract/extract.h"
#include "io/def.h"
#include "netlist/netlist.h"
#include "obs/metrics.h"

namespace ffet::report {

struct NetAttribution {
  netlist::NetId net = netlist::kNoNet;
  std::string name;
  bool is_clock = false;
  int fanout = 0;

  double length_front_um = 0.0;
  double length_back_um = 0.0;
  /// Routed length per layer name, layer-name order ("BM1" < "FM2" ...).
  std::vector<std::pair<std::string, double>> layer_um;
  /// Layer-change count estimated from wire endpoints sharing a point on
  /// different layers (includes the front<->back Drain-Merge hookup).
  int vias = 0;
  bool dual_sided = false;  ///< routed wires on both wafer sides

  double wire_r_ohm = 0.0;   ///< summed segment resistance
  double total_cap_ff = 0.0; ///< wire + sink-pin cap seen by the driver
  double wire_cap_ff = 0.0;
  double worst_elmore_ps = 0.0;  ///< max over the net's sinks
  double elmore_share_pct = 0.0; ///< of the design-wide worst-Elmore total

  double length_um() const { return length_front_um + length_back_um; }
};

/// Plain-value copy of one obs::Histogram (atomics are not copyable).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;
  std::array<std::uint64_t, obs::Histogram::kBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

struct NetReport {
  std::vector<NetAttribution> nets;  ///< NetId order
  double total_elmore_ps = 0.0;      ///< sum of per-net worst Elmore
  double total_length_um = 0.0;
  int total_vias = 0;

  HistogramSnapshot length_hist;  ///< µm, one observation per routed net
  HistogramSnapshot cap_hist;     ///< fF (total cap), every net
  HistogramSnapshot elmore_hist;  ///< ps (worst sink), every net
};

/// Attribute the merged DEF's wires and the RC trees back to nets.
/// Read-only; deterministic.
NetReport build_net_report(const netlist::Netlist& nl, const io::Def& merged,
                           const extract::RcNetlist& rc);

/// Design-level summary + histograms + the `top_n` nets by worst Elmore.
std::string format_net_report(const NetReport& rep, int top_n = 20);

/// Full attribution of one net by name ("" -> "net not found" text).
std::string format_net_detail(const NetReport& rep, const std::string& net_name);

}  // namespace ffet::report
