// snapshot.h — rebuild a flow's physical design state for reporting.
//
// The flow (src/flow) runs floorplan → ... → STA and returns scalar KPIs;
// the intermediate artifacts (placed netlist, merged DEF, RC trees, CTS
// latencies) die inside run_physical.  The reporting CLI needs those
// artifacts to expand timing paths and attribute nets, so build_snapshot
// replays the *exact* stage sequence of flow::run_physical — same
// functions, same options, same order (including the optional ECO loop
// and its full re-merge/re-extract signoff) — and keeps everything alive.
// Determinism of every stage makes the snapshot bit-identical to what the
// flow computed for the same FlowConfig.

#pragma once

#include <memory>

#include "extract/extract.h"
#include "flow/flow.h"
#include "io/def.h"
#include "netlist/netlist.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "sta/sta.h"

namespace ffet::report {

struct Snapshot {
  flow::FlowConfig config;
  std::unique_ptr<flow::DesignContext> ctx;  ///< owns tech + library
  netlist::Netlist nl;  ///< private copy, post-placement/CTS/ECO

  pnr::Floorplan fp;
  pnr::PowerPlan pp;
  pnr::PlacementResult placement;
  pnr::CtsResult cts;
  pnr::RouteResult routes;
  io::Def merged;          ///< front+back merge (post-ECO when eco ran)
  extract::RcNetlist rc;
  sta::StaOptions sta_options;  ///< what the flow's signoff Sta used
  bool eco_ran = false;

  Snapshot(flow::FlowConfig cfg, std::unique_ptr<flow::DesignContext> c)
      : config(std::move(cfg)), ctx(std::move(c)), nl(ctx->netlist) {}
};

/// prepare_design + the physical stages of flow::run_physical, artifacts
/// retained.  Never returns null.
std::unique_ptr<Snapshot> build_snapshot(const flow::FlowConfig& config);

}  // namespace ffet::report
