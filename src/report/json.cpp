#include "report/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ffet::report::json {

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::member_number(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v ? v->number_or(fallback) : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value v;
    if (!parse_value(v)) {
      fill_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing bytes after document";
      fill_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill_error(std::string* error) const {
    if (!error) return;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " at offset %zu", pos_);
    *error = (err_.empty() ? "parse error" : err_) + buf;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  bool consume(char c, const char* msg) {
    if (pos_ >= text_.size() || text_[pos_] != c) return fail(msg);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("unknown literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::String; return parse_string(out.str);
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n': out.kind = Value::Kind::Null; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key");
      skip_ws();
      if (!consume(':', "expected ':'")) return false;
      Value v;
      if (!parse_value(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode (surrogates emitted as-is; our emitters only
          // escape control characters, so this path sees \u00XX).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    out.kind = Value::Kind::Number;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    // std::from_chars accepts the JSON number grammar minus a leading '+'
    // (which JSON forbids anyway) and stops at the first non-number byte.
    const auto res = std::from_chars(begin, end, out.number);
    if (res.ec != std::errc() || res.ptr == begin) {
      return fail("expected number");
    }
    pos_ = static_cast<std::size_t>(res.ptr - text_.data());
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ffet::report::json
