// ledger.h — persistent run ledger: reader, writer, and trend analytics.
//
// The flow appends one "ffet.ledger.v1" line per run to the ledger file
// (FFET_LEDGER / FlowConfig::ledger_path, default .ffet_ledger/ledger.jsonl
// — see flow::resolve_ledger_path), and run_benches.sh appends one line per
// bench point.  This header is the read side: a tolerant JSONL reader with
// the same skip-and-count policy as the flow-report reader (qor.h), plus a
// trend engine that groups entries by (kind, label) and gates the latest
// run against the median of the previous N runs with the same thresholds
// as the QoR diff engine — `ffet_report trend` is the CI gate built on it.
//
// Schema of one line:
//
//   {"schema":"ffet.ledger.v1","kind":"flow"|"bench","label":...,
//    "timestamp_s":...,"host":...,"threads":...,"valid":true|false,
//    "metrics":{"achieved_freq_ghz":...,"power_uw":...,"wirelength_um":...,
//               "drv":...,"runtime_ms":...[,"peak_rss_kb":...,...]}}
//
// Unknown numeric top-level fields are preserved in `extra`; unknown
// metrics ride along in the metrics map (the trend engine reports them as
// ungated series), so old binaries read ledgers written by newer schemas.

#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "report/qor.h"  // ReadStats, DiffOptions (threshold defaults)

namespace ffet::report {

/// One parsed ledger line.
struct LedgerEntry {
  std::string schema;
  std::string kind;   ///< "flow" or "bench"
  std::string label;  ///< FlowConfig::label() or bench name
  std::string host;
  long long timestamp_s = 0;
  int threads = 0;
  bool valid = false;
  std::map<std::string, double> metrics;
  std::map<std::string, double> extra;  ///< unknown numeric top-level fields
};

/// Serialize one entry as a compact single-line JSON object (no trailing
/// newline) — byte-deterministic, mirrors what the flow emitter writes.
std::string ledger_entry_json(const LedgerEntry& entry);

/// Append `line` + '\n' to `path` (O_APPEND semantics; creates the file and
/// one parent directory level if needed).  Returns false and sets `error`
/// on failure.  Never throws — ledger writes must not perturb the run.
bool append_ledger_line(const std::string& path, const std::string& line,
                        std::string* error = nullptr);

/// Read every well-formed ledger line from `is`; malformed lines are
/// skipped and counted in `stats` (same tolerance policy as
/// read_flow_reports), so one torn line cannot poison the history.
std::vector<LedgerEntry> read_ledger(std::istream& is,
                                     ReadStats* stats = nullptr);

/// File convenience; on open failure returns empty and sets `error`.
std::vector<LedgerEntry> read_ledger_file(const std::string& path,
                                          ReadStats* stats = nullptr,
                                          std::string* error = nullptr);

/// Trend gates.  Thresholds are percent relative to the median of the
/// prior runs; negative disables that gate (the series is still printed).
/// Defaults mirror DiffOptions so `trend` and `diff` agree on what counts
/// as a regression.  Runtime and RSS are machine-dependent, so their gates
/// default off.
struct TrendOptions {
  int window = 5;  ///< compare vs the median of up to this many prior runs
  double freq_drop_pct = 1.0;        ///< metrics.achieved_freq_ghz
  double power_rise_pct = 2.0;       ///< metrics.power_uw
  double wirelength_rise_pct = 2.0;  ///< metrics.wirelength_um
  double runtime_rise_pct = -1.0;    ///< metrics.runtime_ms; off by default
  double rss_rise_pct = -1.0;        ///< metrics.peak_rss_kb; off by default
  bool gate_drv = true;       ///< latest drv above prior median regresses
  bool gate_validity = true;  ///< latest invalid after a valid prior run
  std::string kind;   ///< only analyze entries of this kind ("" = all)
  std::string label;  ///< only analyze this label ("" = all)
};

/// One metric's time series within a (kind, label) group.
struct TrendMetric {
  std::string metric;
  std::vector<double> values;  ///< chronological (file order), latest last
  double latest = 0.0;
  double median_prior = 0.0;  ///< median of up to `window` runs before latest
  bool gated = false;         ///< a threshold applies to this metric
  bool regression = false;
  std::string note;  ///< gate verdict, e.g. "rose 3.1% > 2%"
};

/// All series for one (kind, label) group.
struct TrendSeries {
  std::string kind;
  std::string label;
  int runs = 0;
  bool latest_valid = true;
  bool validity_regression = false;  ///< latest invalid, some prior valid
  int regressions = 0;
  std::vector<TrendMetric> metrics;
};

struct TrendReport {
  std::vector<TrendSeries> series;
  std::vector<std::string> notes;  ///< groups skipped (single run) etc.
  int regressions = 0;
  bool ok() const { return regressions == 0; }
};

/// Group `entries` by (kind, label) in file order and gate each group's
/// latest run against the median of its prior runs.  Groups with a single
/// run produce a note, never a regression — the first run of a new label
/// must not fail CI.
TrendReport analyze_trend(const std::vector<LedgerEntry>& entries,
                          const TrendOptions& options = {});

std::string format_trend(const TrendReport& report);

/// Chronological listing of every entry whose label matches (all when
/// `label` is empty): timestamp, host, threads, verdict, key metrics.
std::string format_history(const std::vector<LedgerEntry>& entries,
                           const std::string& label = {});

}  // namespace ffet::report
