// serve_stats.h — reader + pretty printer for ffet.serve_stats.v1.
//
// The sweep-service daemon answers the kStats protocol verb with one JSON
// snapshot of its live state (src/serve/server.h Server::stats_json).
// `ffet_submit --stats` saves that snapshot raw; this is the read side:
// a strict parse into a plain struct, and the human-readable rendering
// behind `ffet_report serve-stats`.
//
// Schema of one snapshot:
//
//   {"schema":"ffet.serve_stats.v1","pid":...,"uptime_ms":...,
//    "workers":...,"queue_depth":...,"in_flight":...,"cache_entries":...,
//    "counters":{"requests":...,"points":...,"cache_hits":...,
//                "cache_misses":...,"single_flight_joins":...,
//                "flow_runs":...,"retries":...,"worker_deaths":...,
//                "worker_restarts":...},
//    "latency_ms":{"queue_wait":H,"cache_probe":H,"worker_run":H},
//    "worker_slots":[{"slot":...,"pid":...,"state":"idle"|"running",
//                     "point":...,"jobs":...,"deaths":...,"uptime_ms":...}]}
//
// where H = {"count":...,"sum":...,"min":...,"max":...,"mean":...,
//            "p50":...,"p95":...,"p99":...,"buckets":[[lower_ms,count],...]}
// (only non-empty histogram buckets are listed).

#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ffet::report {

struct ServeStatsPhase {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<std::pair<double, long long>> buckets;  ///< (lower_ms, count)
};

struct ServeStatsSlot {
  int slot = 0;
  long long pid = 0;
  std::string state;
  std::string point;
  long long jobs = 0;
  long long deaths = 0;
  double uptime_ms = 0.0;
};

struct ServeStatsSnapshot {
  std::string schema;
  long long pid = 0;
  double uptime_ms = 0.0;
  int workers = 0;
  long long queue_depth = 0;
  long long in_flight = 0;
  long long cache_entries = 0;
  std::map<std::string, long long> counters;
  /// Keyed "queue_wait" / "cache_probe" / "worker_run" (document order of
  /// the snapshot's latency_ms object is preserved in `phase_order`).
  std::map<std::string, ServeStatsPhase> phases;
  std::vector<std::string> phase_order;
  std::vector<ServeStatsSlot> slots;
};

/// Parse one snapshot.  nullopt + `error` on malformed JSON or a schema
/// other than ffet.serve_stats.v1.
std::optional<ServeStatsSnapshot> parse_serve_stats(
    std::string_view text, std::string* error = nullptr);

/// Human-readable rendering: header line, counters, a per-phase latency
/// table (count / mean / p50 / p95 / p99 / max), and one line per worker
/// slot.
std::string format_serve_stats(const ServeStatsSnapshot& snap);

}  // namespace ffet::report
