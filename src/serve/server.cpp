#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "flow/config_json.h"
#include "flow/flow.h"
#include "flow/report_json.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/config_codec.h"
#include "serve/protocol.h"
#include "serve/worker.h"

namespace ffet::serve {

namespace {

/// Close every inherited fd except std{in,out,err} and `keep` — a freshly
/// forked worker must not hold the listening socket, client connections or
/// sibling socketpairs open (a held listen fd would keep the socket alive
/// after the daemon exits; a held client fd would defeat EOF detection).
/// Respawn forks happen from a monitor thread while other threads run, so
/// the child side must stick to async-signal-safe calls here: a plain
/// close() loop, no opendir/readdir (either may block on a lock a sibling
/// thread held at fork time).
void close_all_fds_except(int keep) {
  int max_fd = ::getdtablesize();
  if (max_fd < 1024) max_fd = 1024;
  if (max_fd > 65536) max_fd = 65536;
  for (int fd = 3; fd < max_fd; ++fd) {
    if (fd != keep) ::close(fd);
  }
}

/// The synthetic flow-report line for a point whose worker died on every
/// attempt: a valid()==false record whose invalid_reason names worker_died,
/// so it flows through ffet_report / read_flow_reports like any other
/// invalid point instead of poisoning the stream.  Never cached.
std::string worker_died_line(const flow::FlowConfig& config, int attempts) {
  flow::FlowResult res;
  res.config = config;
  res.invalid_reason =
      "worker_died: worker process exited abnormally on all " +
      std::to_string(attempts) + " attempt(s)";
  return flow::flow_report_json(res);
}

}  // namespace

struct Server::Impl {
  // ---- immutable after start() -------------------------------------------
  ServeOptions opts;
  int n_workers = 0;
  ResultCache cache;

  // ---- single-flight + job queue (guarded by mu) -------------------------
  struct Flight {
    bool done = false;
    std::uint32_t flags = 0;  ///< ResultFlag bits of the *producing* run
    std::string line;
  };
  struct Job {
    std::string label;
    std::string config_json;       ///< canonical (config_to_json) object
    flow::FlowConfig config;       ///< for the synthetic worker_died line
    std::shared_ptr<Flight> flight;
  };
  std::mutex mu;
  std::condition_variable queue_cv;   ///< workers: a job or stop arrived
  std::condition_variable flight_cv;  ///< clients: some flight completed
  std::deque<Job> queue;
  std::map<std::string, std::shared_ptr<Flight>> flights;  ///< label -> open
  bool stopping = false;
  bool shutdown_requested = false;
  /// Set from a signal handler — the only member a handler may touch.
  std::atomic<bool> signal_stop{false};

  // ---- worker fleet ------------------------------------------------------
  struct Slot {
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<Slot> slots;            ///< guarded by mu
  std::vector<std::thread> monitors;  ///< one per slot

  // ---- accept loop + clients ---------------------------------------------
  int listen_fd = -1;
  std::thread acceptor;
  std::vector<std::thread> handlers;  ///< guarded by mu
  std::set<int> client_fds;           ///< guarded by mu
  bool started = false;
  bool stopped = false;

  ServeStats st;  ///< guarded by mu

  explicit Impl(ServeOptions o) : opts(std::move(o)), cache(opts.cache_dir) {}

  // ---- logging -----------------------------------------------------------
  void logf(const char* fmt, ...) {
    std::FILE* out = opts.log ? opts.log : stderr;
    char ts[32];
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm);
    std::fprintf(out, "[ffet_serve %s] ", ts);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(out, fmt, ap);
    va_end(ap);
    std::fputc('\n', out);
    std::fflush(out);
  }

  // ---- fleet management --------------------------------------------------
  bool fork_worker(Slot& slot, std::string* error) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      if (error) *error = "socketpair failed: " + std::string(strerror(errno));
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      if (error) *error = "fork failed: " + std::string(strerror(errno));
      return false;
    }
    if (pid == 0) {
      // Worker child.  Drop everything inherited except our pair end; the
      // loop never returns.  A respawned child inherits the daemon's
      // stop-requesting SIGTERM/SIGINT handlers — reset them so stop()'s
      // SIGTERM actually terminates the worker.
      ::signal(SIGTERM, SIG_DFL);
      ::signal(SIGINT, SIG_DFL);
      close_all_fds_except(sv[1]);
      worker_loop(sv[1]);
    }
    ::close(sv[1]);
    slot.pid = pid;
    slot.fd = sv[0];
    return true;
  }

  /// Reap a dead worker and (unless stopping) put a fresh fork in its
  /// slot, retrying with backoff on transient fork/socketpair failure — a
  /// slot left with no worker would otherwise keep draining jobs it can
  /// never run.  On return the slot is live unless the daemon is stopping.
  void replace_worker(int idx) {
    Slot dead;
    {
      std::lock_guard<std::mutex> lk(mu);
      dead = slots[idx];
      slots[idx] = Slot{};
    }
    if (dead.fd >= 0) ::close(dead.fd);
    int status = 0;
    if (dead.pid > 0) ::waitpid(dead.pid, &status, 0);
    const char* how = WIFSIGNALED(status) ? "signal" : "exit";
    const int code = WIFSIGNALED(status) ? WTERMSIG(status)
                                         : (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    {
      std::lock_guard<std::mutex> lk(mu);
      ++st.worker_deaths;
      if (stopping) return;
    }
    FFET_METRIC_ADD("serve.worker_deaths", 1);
    logf("worker %ld died (%s %d); forking replacement",
         static_cast<long>(dead.pid), how, code);
    int delay_ms = 10;
    while (true) {
      Slot fresh;
      std::string error;
      if (fork_worker(fresh, &error)) {
        bool discard = false;
        {
          std::lock_guard<std::mutex> lk(mu);
          if (stopping) {
            discard = true;  // raced with stop(); nobody will retire it
          } else {
            ++st.worker_restarts;
            slots[idx] = fresh;
          }
        }
        if (discard) {
          ::kill(fresh.pid, SIGTERM);
          ::close(fresh.fd);
          ::waitpid(fresh.pid, nullptr, 0);
          return;
        }
        FFET_METRIC_ADD("serve.worker_restarts", 1);
        logf("worker %ld up in slot %d", static_cast<long>(fresh.pid), idx);
        return;
      }
      logf("worker respawn failed: %s (retry in %d ms)", error.c_str(),
           delay_ms);
      // Sleep in short slices so a concurrent stop() is never held up by
      // the backoff.
      for (int slept = 0; slept < delay_ms; slept += 50) {
        {
          std::lock_guard<std::mutex> lk(mu);
          if (stopping) return;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(50, delay_ms - slept)));
      }
      delay_ms = std::min(delay_ms * 2, 1000);
    }
  }

  /// One monitor thread per worker slot: pop a job, run it on this slot's
  /// worker, retrying once on a fresh worker if the process dies mid-point.
  void monitor_loop(int idx) {
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lk(mu);
        queue_cv.wait(lk, [&] { return stopping || !queue.empty(); });
        if (stopping) return;
        job = std::move(queue.front());
        queue.pop_front();
        FFET_METRIC_GAUGE_SET("serve.queue_depth",
                          static_cast<double>(queue.size()));
      }

      std::uint32_t flags = 0;
      std::string line;
      bool ran = false;
      int attempt = 0;
      for (; attempt < std::max(1, opts.max_attempts); ++attempt) {
        int fd = -1;
        {
          std::lock_guard<std::mutex> lk(mu);
          fd = stopping ? -1 : slots[idx].fd;
        }
        if (fd < 0) {
          // Only possible when the daemon is stopping (replace_worker
          // retries respawns until it succeeds or stop() begins): hand
          // the job back instead of consuming and failing the point.
          {
            std::lock_guard<std::mutex> lk(mu);
            queue.push_front(std::move(job));
          }
          queue_cv.notify_one();
          return;
        }
        if (attempt > 0) {
          std::lock_guard<std::mutex> lk(mu);
          ++st.retries;
        }
        if (attempt > 0) FFET_METRIC_ADD("serve.retries", 1);
        const bool sent = write_frame(
            fd, FrameType::kJob,
            pack_job(static_cast<std::uint32_t>(attempt), job.config_json));
        std::optional<Frame> reply;
        if (sent) reply = read_frame(fd);
        if (!sent || !reply || reply->type != FrameType::kResult) {
          // Short read / EPIPE: the worker process is gone (segfault, OOM
          // kill, test SIGKILL).  Reap it, refresh the slot, maybe retry.
          replace_worker(idx);
          continue;
        }
        std::uint32_t ignored_index = 0, ignored_flags = 0;
        if (!unpack_result(reply->payload, ignored_index, ignored_flags,
                           line)) {
          replace_worker(idx);
          continue;
        }
        ran = true;
        if (attempt > 0) flags |= kFlagRetried;
        break;
      }

      if (ran) {
        {
          std::lock_guard<std::mutex> lk(mu);
          ++st.flow_runs;
        }
        FFET_METRIC_ADD("serve.flow_runs", 1);
        // Write-through to the persistent cache — only genuine results;
        // a worker_died line must never mask a future successful run.
        cache.store(job.label, line);
      } else {
        flags |= kFlagWorkerDied;
        line = worker_died_line(job.config, std::max(1, opts.max_attempts));
        logf("point failed on all attempts (worker_died): %s",
             job.label.c_str());
      }

      {
        std::lock_guard<std::mutex> lk(mu);
        job.flight->done = true;
        job.flight->flags = flags;
        job.flight->line = std::move(line);
        flights.erase(job.label);
      }
      flight_cv.notify_all();
    }
  }

  // ---- request handling --------------------------------------------------
  /// Resolve one sweep point to a Flight (completed or pending) plus the
  /// requester-side flags.  Exactly one resolve() per label schedules a
  /// flow run; everyone else hits the cache or joins the open flight.
  std::shared_ptr<Flight> resolve(const flow::FlowConfig& config,
                                  std::uint32_t* req_flags) {
    const std::string label = config.label();
    *req_flags = 0;

    std::string cached_line;
    std::unique_lock<std::mutex> lk(mu);
    // Cache lookup under mu: the check and the flight insertion must be
    // one atomic step or two concurrent misses both schedule the point.
    if (cache.lookup(label, &cached_line)) {
      ++st.cache_hits;
      lk.unlock();
      FFET_METRIC_ADD("serve.cache_hits", 1);
      auto f = std::make_shared<Flight>();
      f->done = true;
      f->flags = kFlagCached;
      f->line = std::move(cached_line);
      *req_flags = kFlagCached;
      return f;
    }
    if (const auto it = flights.find(label); it != flights.end()) {
      ++st.single_flight_joins;
      // Copy the shared_ptr while still holding mu: the producing monitor
      // erases this map entry the moment the flight completes, so `it`
      // must not be dereferenced after the unlock.
      auto f = it->second;
      lk.unlock();
      FFET_METRIC_ADD("serve.single_flight_joins", 1);
      *req_flags = kFlagJoined;
      return f;
    }
    ++st.cache_misses;
    auto f = std::make_shared<Flight>();
    flights[label] = f;
    queue.push_back(Job{label, flow::config_to_json(config), config, f});
    FFET_METRIC_GAUGE_SET("serve.queue_depth", static_cast<double>(queue.size()));
    lk.unlock();
    FFET_METRIC_ADD("serve.cache_misses", 1);
    queue_cv.notify_one();
    return f;
  }

  void handle_submit(int fd, const std::string& payload) {
    std::string error;
    const auto configs = configs_from_json_text(payload, &error);
    if (!configs) {
      write_frame(fd, FrameType::kError, "bad submission: " + error);
      return;
    }
    if (configs->empty()) {
      write_frame(fd, FrameType::kError, "bad submission: empty sweep");
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      ++st.requests;
      st.points += static_cast<long long>(configs->size());
    }
    FFET_METRIC_ADD("serve.requests", 1);
    FFET_METRIC_ADD("serve.points", static_cast<long long>(configs->size()));
    logf("submit: %zu point(s)", configs->size());

    struct Pending {
      std::shared_ptr<Flight> flight;
      std::uint32_t req_flags = 0;
    };
    std::vector<Pending> pending(configs->size());
    for (std::size_t i = 0; i < configs->size(); ++i) {
      pending[i].flight = resolve((*configs)[i], &pending[i].req_flags);
    }

    // Stream results back in point order: workers complete out of order,
    // but waiting on flight i before i+1 makes the reply deterministic.
    long long hits = 0, joins = 0, runs = 0, retried = 0, died = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      std::string line;
      std::uint32_t flags = 0;
      {
        std::unique_lock<std::mutex> lk(mu);
        flight_cv.wait(lk, [&] {
          return pending[i].flight->done || stopping;
        });
        if (!pending[i].flight->done) {
          // Daemon is tearing down under us; answer what we can.
          write_frame(fd, FrameType::kError, "daemon shutting down");
          return;
        }
        line = pending[i].flight->line;
        flags = pending[i].flight->flags | pending[i].req_flags;
      }
      if (flags & kFlagCached) ++hits;
      if (flags & kFlagJoined) ++joins;
      if (flags & kFlagRetried) ++retried;
      if (flags & kFlagWorkerDied) ++died;
      if (!(flags & (kFlagCached | kFlagJoined))) ++runs;
      if (!write_frame(fd, FrameType::kResult,
                       pack_result(static_cast<std::uint32_t>(i), flags,
                                   line))) {
        logf("client went away mid-stream (point %zu)", i);
        return;  // flights keep running; their results stay cached
      }
    }

    std::string stats_buf;
    flow::JsonBuilder stats_json(stats_buf);
    stats_json.open_obj();
    stats_json.field("points", static_cast<long long>(pending.size()));
    stats_json.field("cache_hits", hits);
    stats_json.field("joined", joins);
    stats_json.field("ran", runs);
    stats_json.field("retried", retried);
    stats_json.field("worker_died", died);
    stats_json.close_obj();
    write_frame(fd, FrameType::kDone, stats_buf);
    logf("submit done: %lld cached, %lld joined, %lld ran, %lld died", hits,
         joins, runs, died);
  }

  void handle_client(int fd) {
    while (true) {
      const auto frame = read_frame(fd);
      if (!frame) break;
      if (frame->type == FrameType::kSubmit) {
        handle_submit(fd, frame->payload);
      } else if (frame->type == FrameType::kPing) {
        write_frame(fd, FrameType::kDone, "{}");
      } else if (frame->type == FrameType::kShutdown) {
        write_frame(fd, FrameType::kDone, "{}");
        logf("shutdown requested by client");
        {
          std::lock_guard<std::mutex> lk(mu);
          shutdown_requested = true;
        }
        // wait() observes the flag and the daemon main calls stop();
        // stopping from this thread would join ourselves.
        flight_cv.notify_all();
        break;
      } else {
        write_frame(fd, FrameType::kError, "unexpected frame type");
        break;
      }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lk(mu);
    client_fds.erase(fd);
  }

  void accept_loop() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listen fd shut down by stop()
      }
      std::lock_guard<std::mutex> lk(mu);
      if (stopping) {
        ::close(fd);
        return;
      }
      client_fds.insert(fd);
      handlers.emplace_back([this, fd] { handle_client(fd); });
    }
  }
};

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

int Server::resolve_workers(int requested) {
  if (requested > 0) return std::min(requested, 64);
  if (const char* env = std::getenv("FFET_WORKERS")) {
    const int n = std::atoi(env);
    if (n > 0) return std::min(n, 64);
  }
  return 2;
}

bool Server::start(std::string* error) {
  Impl& im = *impl_;
  if (im.started) {
    if (error) *error = "server already started";
    return false;
  }
  // A client or worker that vanishes mid-write must surface as EPIPE, not
  // kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  im.n_workers = resolve_workers(im.opts.workers);
  if (im.cache.enabled()) {
    const int loaded = im.cache.load_index();
    im.logf("cache %s: %d entr%s loaded%s", im.cache.dir().c_str(), loaded,
            loaded == 1 ? "y" : "ies",
            im.cache.skipped_files() > 0 ? " (some files skipped)" : "");
  } else {
    im.logf("cache disabled");
  }

  im.listen_fd = listen_unix(im.opts.socket_path, error);
  if (im.listen_fd < 0) return false;

  // Fork the fleet BEFORE any request threads exist: each worker inherits
  // only the daemon's quiescent state plus its own socketpair end.
  im.slots.resize(static_cast<std::size_t>(im.n_workers));
  for (int i = 0; i < im.n_workers; ++i) {
    if (!im.fork_worker(im.slots[static_cast<std::size_t>(i)], error)) {
      stop();
      return false;
    }
  }
  for (int i = 0; i < im.n_workers; ++i) {
    im.monitors.emplace_back([this, i] { impl_->monitor_loop(i); });
  }
  im.acceptor = std::thread([this] { impl_->accept_loop(); });
  im.started = true;
  im.logf("listening on %s with %d worker(s)", im.opts.socket_path.c_str(),
          im.n_workers);
  return true;
}

void Server::wait() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lk(im.mu);
  // Polling interval exists only for signal_stop, which a signal handler
  // sets without being able to notify the condition variable.
  while (!im.shutdown_requested && !im.stopping &&
         !im.signal_stop.load(std::memory_order_relaxed)) {
    im.flight_cv.wait_for(lk, std::chrono::milliseconds(200));
  }
}

void Server::request_stop_from_signal() {
  impl_->signal_stop.store(true, std::memory_order_relaxed);
}

void Server::stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;

  {
    std::lock_guard<std::mutex> lk(im.mu);
    im.stopping = true;
    // Unresolved flights stay !done; handlers woken below observe stopping
    // and answer kError instead of hanging on them.
    im.queue.clear();
  }
  im.queue_cv.notify_all();
  im.flight_cv.notify_all();

  // Unblock the acceptor and any handler blocked in read_frame.  The
  // listen fd is shutdown() now but close()d only after the acceptor is
  // joined — the acceptor reads it unlocked, and closing early would both
  // race that read and allow the fd number to be reused under it.
  if (im.listen_fd >= 0) ::shutdown(im.listen_fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (const int fd : im.client_fds) ::shutdown(fd, SHUT_RDWR);
  }
  if (im.acceptor.joinable()) im.acceptor.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    handlers.swap(im.handlers);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }

  // Retire the fleet.  shutdown() first: unlike close() it wakes a
  // monitor blocked in read_frame on the pair, and the worker end sees
  // EOF; SIGTERM cuts short a worker mid-flow so the waitpid below never
  // waits out a long point.  Monitors are joined BEFORE any slot fd is
  // closed so a concurrently reused fd number can never be misrouted
  // into worker I/O.
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (const auto& s : im.slots) {
      if (s.fd >= 0) ::shutdown(s.fd, SHUT_RDWR);
      if (s.pid > 0) ::kill(s.pid, SIGTERM);
    }
  }
  for (std::thread& t : im.monitors) {
    if (t.joinable()) t.join();
  }
  im.monitors.clear();
  std::vector<Impl::Slot> slots;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    slots = im.slots;
    for (auto& s : im.slots) s = Impl::Slot{};
  }
  for (const auto& s : slots) {
    if (s.fd >= 0) ::close(s.fd);
  }
  for (const auto& s : slots) {
    if (s.pid > 0) ::waitpid(s.pid, nullptr, 0);
  }

  ::unlink(im.opts.socket_path.c_str());
  im.logf("stopped");
}

int Server::workers() const { return impl_->n_workers; }

std::vector<pid_t> Server::worker_pids() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<pid_t> pids;
  for (const auto& s : impl_->slots) {
    if (s.pid > 0) pids.push_back(s.pid);
  }
  return pids;
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->st;
}

int Server::cache_entries() const { return impl_->cache.entries(); }

}  // namespace ffet::serve
