#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "flow/config_json.h"
#include "flow/flow.h"
#include "flow/report_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/ledger.h"
#include "serve/cache.h"
#include "serve/config_codec.h"
#include "serve/protocol.h"
#include "serve/tracemerge.h"
#include "serve/worker.h"

namespace ffet::serve {

namespace {

/// Close every inherited fd except std{in,out,err} and `keep` — a freshly
/// forked worker must not hold the listening socket, client connections or
/// sibling socketpairs open (a held listen fd would keep the socket alive
/// after the daemon exits; a held client fd would defeat EOF detection).
/// Respawn forks happen from a monitor thread while other threads run, so
/// the child side must stick to async-signal-safe calls here: a plain
/// close() loop, no opendir/readdir (either may block on a lock a sibling
/// thread held at fork time).
void close_all_fds_except(int keep) {
  int max_fd = ::getdtablesize();
  if (max_fd < 1024) max_fd = 1024;
  if (max_fd > 65536) max_fd = 65536;
  for (int fd = 3; fd < max_fd; ++fd) {
    if (fd != keep) ::close(fd);
  }
}

/// The synthetic flow-report line for a point whose worker died on every
/// attempt: a valid()==false record whose invalid_reason names worker_died,
/// so it flows through ffet_report / read_flow_reports like any other
/// invalid point instead of poisoning the stream.  Never cached.
std::string worker_died_line(const flow::FlowConfig& config, int attempts) {
  flow::FlowResult res;
  res.config = config;
  res.invalid_reason =
      "worker_died: worker process exited abnormally on all " +
      std::to_string(attempts) + " attempt(s)";
  return flow::flow_report_json(res);
}

enum class LogLevel { kInfo, kWarn, kError };

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    default:
      return "info";
  }
}

/// Serialize one phase histogram into an open "latency_ms" object:
///   "<key>":{"count":..,"sum":..,"min":..,"max":..,"mean":..,
///            "p50":..,"p95":..,"p99":..,"buckets":[[lower_ms,count],...]}
/// Only non-empty buckets are listed — 32 mostly-zero pairs per phase
/// would dwarf the rest of the snapshot.
void append_hist_json(std::string& out, flow::JsonBuilder& j, const char* key,
                      const obs::HistSnapshot& h) {
  j.open_nested(key);
  j.field("count", static_cast<long long>(h.count));
  j.field("sum", h.sum);
  j.field("min", h.min);
  j.field("max", h.max);
  j.field("mean", h.mean());
  j.field("p50", h.quantile(0.50));
  j.field("p95", h.quantile(0.95));
  j.field("p99", h.quantile(0.99));
  j.open_array("buckets");
  for (int i = 0; i < static_cast<int>(h.buckets.size()); ++i) {
    if (h.buckets[i] == 0) continue;
    j.element();
    out += '[';
    obs::append_double(out, obs::Histogram::bucket_lower_bound(i));
    out += ',';
    out += std::to_string(h.buckets[i]);
    out += ']';
  }
  j.close_array();
  j.close_obj();
}

}  // namespace

struct Server::Impl {
  // ---- immutable after start() -------------------------------------------
  ServeOptions opts;
  int n_workers = 0;
  ResultCache cache;

  // ---- single-flight + job queue (guarded by mu) -------------------------
  struct Flight {
    bool done = false;
    std::uint32_t flags = 0;  ///< ResultFlag bits of the *producing* run
    std::string line;
    // Latency attribution of the producing run (zero for cached flights).
    double queue_ms = 0.0;
    double run_ms = 0.0;
    int retries = 0;
    int worker_pid = 0;
  };
  struct Job {
    std::string label;
    std::string config_json;       ///< canonical (config_to_json) object
    flow::FlowConfig config;       ///< for the synthetic worker_died line
    std::shared_ptr<Flight> flight;
    std::uint64_t enqueue_ns = 0;  ///< trace-epoch clock, for queue-wait
  };
  std::mutex mu;
  std::condition_variable queue_cv;   ///< workers: a job or stop arrived
  std::condition_variable flight_cv;  ///< clients: some flight completed
  std::deque<Job> queue;
  std::map<std::string, std::shared_ptr<Flight>> flights;  ///< label -> open
  bool stopping = false;
  bool shutdown_requested = false;
  /// Set from a signal handler — the only member a handler may touch.
  std::atomic<bool> signal_stop{false};

  // ---- worker fleet ------------------------------------------------------
  struct Slot {
    pid_t pid = -1;
    int fd = -1;
    std::uint64_t spawn_ns = 0;  ///< trace-epoch clock at fork
    long long jobs = 0;          ///< jobs completed, cumulative per slot
    long long deaths = 0;        ///< worker deaths, cumulative per slot
    std::string running;         ///< label of the in-flight point, "" = idle
  };
  std::vector<Slot> slots;            ///< guarded by mu
  std::vector<std::thread> monitors;  ///< one per slot

  // ---- accept loop + clients ---------------------------------------------
  int listen_fd = -1;
  std::thread acceptor;
  std::vector<std::thread> handlers;  ///< guarded by mu
  std::set<int> client_fds;           ///< guarded by mu
  bool started = false;
  bool stopped = false;

  ServeStats st;  ///< guarded by mu

  // ---- observability plane -----------------------------------------------
  /// Cross-process tracing: on iff opts.trace_path is non-empty.
  bool tracing = false;
  bool prev_tracing = false;  ///< obs state to restore at stop()
  std::string span_dir;       ///< <trace_path>.spans/, worker span files
  std::atomic<std::uint64_t> span_seq{0};
  TraceMerger merger;
  /// Latency attribution on served flow-report lines (opts.attribution or
  /// FFET_SERVE_ATTRIB=1), resolved at start().
  bool attribution = false;
  std::string serve_ledger_path;  ///< "" = no serve ledger lines
  /// Phase latency histograms (milliseconds).  Pure atomics, recorded
  /// unconditionally — they surface only through the kStats snapshot, so
  /// always-on costs nothing on any output path.
  obs::Histogram hist_queue_wait;
  obs::Histogram hist_cache_probe;
  obs::Histogram hist_worker_run;
  std::uint64_t start_ns = 0;  ///< trace-epoch clock at start(), for uptime

  explicit Impl(ServeOptions o) : opts(std::move(o)), cache(opts.cache_dir) {}

  // ---- logging -----------------------------------------------------------
  void logf(LogLevel level, const char* fmt, ...) {
    std::FILE* out = opts.log ? opts.log : stderr;
    char ts[40];
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    // ISO-8601 with the numeric UTC offset, e.g. 2026-08-08T14:03:07+0000.
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%S%z", &tm);
    std::fprintf(out, "[ffet_serve %s %s] ", ts, level_name(level));
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(out, fmt, ap);
    va_end(ap);
    std::fputc('\n', out);
    std::fflush(out);
  }

  // ---- fleet management --------------------------------------------------
  bool fork_worker(Slot& slot, std::string* error) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      if (error) *error = "socketpair failed: " + std::string(strerror(errno));
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      if (error) *error = "fork failed: " + std::string(strerror(errno));
      return false;
    }
    if (pid == 0) {
      // Worker child.  Drop everything inherited except our pair end; the
      // loop never returns.  A respawned child inherits the daemon's
      // stop-requesting SIGTERM/SIGINT handlers — reset them so stop()'s
      // SIGTERM actually terminates the worker.
      ::signal(SIGTERM, SIG_DFL);
      ::signal(SIGINT, SIG_DFL);
      close_all_fds_except(sv[1]);
      worker_loop(sv[1]);
    }
    ::close(sv[1]);
    slot.pid = pid;
    slot.fd = sv[0];
    slot.spawn_ns = obs::trace_now_ns();
    return true;
  }

  /// Reap a dead worker and (unless stopping) put a fresh fork in its
  /// slot, retrying with backoff on transient fork/socketpair failure — a
  /// slot left with no worker would otherwise keep draining jobs it can
  /// never run.  On return the slot is live unless the daemon is stopping.
  void replace_worker(int idx, const std::string& label) {
    Slot dead;
    {
      std::lock_guard<std::mutex> lk(mu);
      dead = slots[idx];
      slots[idx] = Slot{};
      // The slot's job/death history survives the respawn — the stats
      // snapshot reports them per slot, not per incarnation.
      slots[idx].jobs = dead.jobs;
      slots[idx].deaths = dead.deaths + 1;
      slots[idx].running = dead.running;
    }
    if (dead.fd >= 0) ::close(dead.fd);
    int status = 0;
    if (dead.pid > 0) ::waitpid(dead.pid, &status, 0);
    const char* how = WIFSIGNALED(status) ? "signal" : "exit";
    const int code = WIFSIGNALED(status) ? WTERMSIG(status)
                                         : (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    {
      std::lock_guard<std::mutex> lk(mu);
      ++st.worker_deaths;
      if (stopping) return;
    }
    FFET_METRIC_ADD("serve.worker_deaths", 1);
    logf(LogLevel::kWarn, "worker %ld died (%s %d) on point %s; forking "
         "replacement", static_cast<long>(dead.pid), how, code,
         label.empty() ? "(idle)" : label.c_str());
    int delay_ms = 10;
    while (true) {
      Slot fresh;
      std::string error;
      if (fork_worker(fresh, &error)) {
        bool discard = false;
        {
          std::lock_guard<std::mutex> lk(mu);
          if (stopping) {
            discard = true;  // raced with stop(); nobody will retire it
          } else {
            ++st.worker_restarts;
            fresh.jobs = slots[idx].jobs;
            fresh.deaths = slots[idx].deaths;
            fresh.running = slots[idx].running;
            slots[idx] = fresh;
          }
        }
        if (discard) {
          ::kill(fresh.pid, SIGTERM);
          ::close(fresh.fd);
          ::waitpid(fresh.pid, nullptr, 0);
          return;
        }
        FFET_METRIC_ADD("serve.worker_restarts", 1);
        logf(LogLevel::kInfo, "worker %ld up in slot %d",
             static_cast<long>(fresh.pid), idx);
        return;
      }
      logf(LogLevel::kWarn, "worker respawn failed: %s (retry in %d ms)",
           error.c_str(), delay_ms);
      // Sleep in short slices so a concurrent stop() is never held up by
      // the backoff.
      for (int slept = 0; slept < delay_ms; slept += 50) {
        {
          std::lock_guard<std::mutex> lk(mu);
          if (stopping) return;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(50, delay_ms - slept)));
      }
      delay_ms = std::min(delay_ms * 2, 1000);
    }
  }

  /// One monitor thread per worker slot: pop a job, run it on this slot's
  /// worker, retrying once on a fresh worker if the process dies mid-point.
  void monitor_loop(int idx) {
    if (tracing) obs::set_thread_name("serve.monitor." + std::to_string(idx));
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lk(mu);
        queue_cv.wait(lk, [&] { return stopping || !queue.empty(); });
        if (stopping) return;
        job = std::move(queue.front());
        queue.pop_front();
        slots[idx].running = job.label;
        FFET_METRIC_GAUGE_SET("serve.queue_depth",
                          static_cast<double>(queue.size()));
      }

      // Queue-wait phase ends the moment a monitor picks the job up.
      const std::uint64_t dequeue_ns = obs::trace_now_ns();
      const double queue_ms =
          dequeue_ns > job.enqueue_ns
              ? static_cast<double>(dequeue_ns - job.enqueue_ns) / 1e6
              : 0.0;
      hist_queue_wait.observe(queue_ms);
      if (obs::tracing_enabled()) {
        obs::record_span("serve.queue_wait " + job.label, job.enqueue_ns,
                         dequeue_ns);
      }

      // One span file per job; a retry on a fresh worker overwrites it.
      std::string span_path;
      if (tracing) {
        span_path =
            span_dir + "/span." +
            std::to_string(span_seq.fetch_add(1, std::memory_order_relaxed)) +
            ".json";
      }

      std::uint32_t flags = 0;
      std::string line;
      bool ran = false;
      int attempt = 0;
      int run_pid = 0;
      double run_ms = 0.0;
      for (; attempt < std::max(1, opts.max_attempts); ++attempt) {
        int fd = -1;
        pid_t wpid = -1;
        {
          std::lock_guard<std::mutex> lk(mu);
          fd = stopping ? -1 : slots[idx].fd;
          wpid = slots[idx].pid;
        }
        if (fd < 0) {
          // Only possible when the daemon is stopping (replace_worker
          // retries respawns until it succeeds or stop() begins): hand
          // the job back instead of consuming and failing the point.
          {
            std::lock_guard<std::mutex> lk(mu);
            queue.push_front(std::move(job));
          }
          queue_cv.notify_one();
          return;
        }
        if (attempt > 0) {
          {
            std::lock_guard<std::mutex> lk(mu);
            ++st.retries;
          }
          FFET_METRIC_ADD("serve.retries", 1);
          logf(LogLevel::kWarn, "retrying point %s on worker %ld (attempt %d)",
               job.label.c_str(), static_cast<long>(wpid), attempt + 1);
        }
        const std::uint64_t run_start_ns = obs::trace_now_ns();
        const bool sent = write_frame(
            fd, FrameType::kJob,
            pack_job(static_cast<std::uint32_t>(attempt), job.config_json,
                     tracing ? obs::trace_epoch_raw_ns() : 0, span_path));
        std::optional<Frame> reply;
        if (sent) reply = read_frame(fd);
        if (!sent || !reply || reply->type != FrameType::kResult) {
          // Short read / EPIPE: the worker process is gone (segfault, OOM
          // kill, test SIGKILL).  Reap it, refresh the slot, maybe retry.
          replace_worker(idx, job.label);
          continue;
        }
        std::uint32_t ignored_index = 0, ignored_flags = 0;
        if (!unpack_result(reply->payload, ignored_index, ignored_flags,
                           line)) {
          replace_worker(idx, job.label);
          continue;
        }
        const std::uint64_t run_end_ns = obs::trace_now_ns();
        run_ms = static_cast<double>(run_end_ns - run_start_ns) / 1e6;
        run_pid = static_cast<int>(wpid);
        hist_worker_run.observe(run_ms);
        if (obs::tracing_enabled()) {
          obs::record_span("serve.worker_run " + job.label, run_start_ns,
                           run_end_ns);
        }
        if (tracing) {
          merger.set_process_name(run_pid,
                                  "worker." + std::to_string(run_pid));
          std::string ierr;
          if (!merger.ingest_file(span_path, run_pid, &ierr)) {
            logf(LogLevel::kWarn, "cannot merge worker spans: %s",
                 ierr.c_str());
          }
          ::unlink(span_path.c_str());
        }
        ran = true;
        if (attempt > 0) flags |= kFlagRetried;
        break;
      }
      if (tracing && !ran && !span_path.empty()) {
        ::unlink(span_path.c_str());  // a dead worker may have left a torn file
      }

      if (ran) {
        {
          std::lock_guard<std::mutex> lk(mu);
          ++st.flow_runs;
          ++slots[idx].jobs;
        }
        FFET_METRIC_ADD("serve.flow_runs", 1);
        // Write-through to the persistent cache — only genuine results;
        // a worker_died line must never mask a future successful run.
        cache.store(job.label, line);
      } else {
        flags |= kFlagWorkerDied;
        line = worker_died_line(job.config, std::max(1, opts.max_attempts));
        logf(LogLevel::kError, "point failed on all attempts (worker_died): %s",
             job.label.c_str());
      }

      {
        std::lock_guard<std::mutex> lk(mu);
        slots[idx].running.clear();
        job.flight->done = true;
        job.flight->flags = flags;
        job.flight->line = std::move(line);
        job.flight->queue_ms = queue_ms;
        job.flight->run_ms = run_ms;
        job.flight->retries = ran ? attempt : std::max(1, opts.max_attempts) - 1;
        job.flight->worker_pid = run_pid;
        flights.erase(job.label);
      }
      flight_cv.notify_all();
    }
  }

  // ---- request handling --------------------------------------------------
  /// Resolve one sweep point to a Flight (completed or pending) plus the
  /// requester-side flags.  Exactly one resolve() per label schedules a
  /// flow run; everyone else hits the cache or joins the open flight.
  std::shared_ptr<Flight> resolve(const flow::FlowConfig& config,
                                  std::uint32_t* req_flags,
                                  double* cache_ms) {
    const std::string label = config.label();
    *req_flags = 0;

    std::string cached_line;
    const std::uint64_t probe_start_ns = obs::trace_now_ns();
    std::unique_lock<std::mutex> lk(mu);
    // Cache lookup under mu: the check and the flight insertion must be
    // one atomic step or two concurrent misses both schedule the point.
    const bool hit = cache.lookup(label, &cached_line);
    const std::uint64_t probe_end_ns = obs::trace_now_ns();
    *cache_ms = static_cast<double>(probe_end_ns - probe_start_ns) / 1e6;
    hist_cache_probe.observe(*cache_ms);
    if (obs::tracing_enabled()) {
      obs::record_span("serve.cache_probe " + label, probe_start_ns,
                       probe_end_ns);
    }
    if (hit) {
      ++st.cache_hits;
      lk.unlock();
      FFET_METRIC_ADD("serve.cache_hits", 1);
      auto f = std::make_shared<Flight>();
      f->done = true;
      f->flags = kFlagCached;
      f->line = std::move(cached_line);
      *req_flags = kFlagCached;
      return f;
    }
    if (const auto it = flights.find(label); it != flights.end()) {
      ++st.single_flight_joins;
      // Copy the shared_ptr while still holding mu: the producing monitor
      // erases this map entry the moment the flight completes, so `it`
      // must not be dereferenced after the unlock.
      auto f = it->second;
      lk.unlock();
      FFET_METRIC_ADD("serve.single_flight_joins", 1);
      *req_flags = kFlagJoined;
      return f;
    }
    ++st.cache_misses;
    auto f = std::make_shared<Flight>();
    flights[label] = f;
    queue.push_back(Job{label, flow::config_to_json(config), config, f,
                        probe_end_ns});
    FFET_METRIC_GAUGE_SET("serve.queue_depth", static_cast<double>(queue.size()));
    lk.unlock();
    FFET_METRIC_ADD("serve.cache_misses", 1);
    queue_cv.notify_one();
    return f;
  }

  /// Append one kind="serve" ledger line for a streamed point, so
  /// `ffet_report trend` can watch queue/cache/run latency drift per label.
  void append_serve_ledger(const std::string& label,
                           const flow::ServeAttribution& attr,
                           bool line_valid) {
    report::LedgerEntry e;
    e.schema = "ffet.ledger.v1";
    e.kind = "serve";
    e.label = label;
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
    e.host = host;
    e.timestamp_s = static_cast<long long>(std::time(nullptr));
    e.threads = n_workers;
    e.valid = line_valid;
    e.metrics["queue_ms"] = attr.queue_ms;
    e.metrics["cache_ms"] = attr.cache_ms;
    e.metrics["run_ms"] = attr.run_ms;
    e.metrics["retries"] = attr.retries;
    e.metrics["cache_hit"] = attr.cache_hit ? 1.0 : 0.0;
    std::string error;
    if (!report::append_ledger_line(serve_ledger_path, ledger_entry_json(e),
                                    &error)) {
      logf(LogLevel::kWarn, "serve ledger append failed: %s", error.c_str());
    }
  }

  void handle_submit(int fd, const std::string& payload) {
    std::string error;
    const auto sub = submission_from_json_text(payload, &error);
    if (!sub) {
      write_frame(fd, FrameType::kError, "bad submission: " + error);
      return;
    }
    const std::vector<flow::FlowConfig>& configs = sub->configs;
    if (configs.empty()) {
      write_frame(fd, FrameType::kError, "bad submission: empty sweep");
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      ++st.requests;
      st.points += static_cast<long long>(configs.size());
    }
    FFET_METRIC_ADD("serve.requests", 1);
    FFET_METRIC_ADD("serve.points", static_cast<long long>(configs.size()));
    if (sub->trace_id.empty()) {
      logf(LogLevel::kInfo, "submit: %zu point(s)", configs.size());
    } else {
      logf(LogLevel::kInfo, "submit: %zu point(s) [trace %s]", configs.size(),
           sub->trace_id.c_str());
    }
    // The whole request — resolution through streaming — as one span on
    // this handler's lane, named by the client's trace id when present.
    obs::TraceScope submit_scope(
        sub->trace_id.empty() ? std::string("serve.submit")
                              : "serve.submit " + sub->trace_id);

    struct Pending {
      std::shared_ptr<Flight> flight;
      std::uint32_t req_flags = 0;
      std::string label;
      double cache_ms = 0.0;
    };
    std::vector<Pending> pending(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      pending[i].label = configs[i].label();
      pending[i].flight =
          resolve(configs[i], &pending[i].req_flags, &pending[i].cache_ms);
    }

    // Stream results back in point order: workers complete out of order,
    // but waiting on flight i before i+1 makes the reply deterministic.
    long long hits = 0, joins = 0, runs = 0, retried = 0, died = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      std::string line;
      std::uint32_t flags = 0;
      flow::ServeAttribution attr;
      {
        std::unique_lock<std::mutex> lk(mu);
        flight_cv.wait(lk, [&] {
          return pending[i].flight->done || stopping;
        });
        if (!pending[i].flight->done) {
          // Daemon is tearing down under us; answer what we can.
          write_frame(fd, FrameType::kError, "daemon shutting down");
          return;
        }
        line = pending[i].flight->line;
        flags = pending[i].flight->flags | pending[i].req_flags;
        attr.queue_ms = pending[i].flight->queue_ms;
        attr.run_ms = pending[i].flight->run_ms;
        attr.retries = pending[i].flight->retries;
        attr.worker_pid = pending[i].flight->worker_pid;
      }
      attr.cache_ms = pending[i].cache_ms;
      attr.cache_hit = (flags & kFlagCached) != 0;
      if (attribution) {
        flow::append_serve_report(line, attr);
        if (!serve_ledger_path.empty()) {
          append_serve_ledger(pending[i].label, attr,
                              line.find("\"valid\":true") != std::string::npos);
        }
      }
      if (flags & kFlagCached) ++hits;
      if (flags & kFlagJoined) ++joins;
      if (flags & kFlagRetried) ++retried;
      if (flags & kFlagWorkerDied) ++died;
      if (!(flags & (kFlagCached | kFlagJoined))) ++runs;
      if (!write_frame(fd, FrameType::kResult,
                       pack_result(static_cast<std::uint32_t>(i), flags,
                                   line))) {
        logf(LogLevel::kWarn, "client went away mid-stream (point %zu)", i);
        return;  // flights keep running; their results stay cached
      }
    }

    std::string stats_buf;
    flow::JsonBuilder stats_json(stats_buf);
    stats_json.open_obj();
    stats_json.field("points", static_cast<long long>(pending.size()));
    stats_json.field("cache_hits", hits);
    stats_json.field("joined", joins);
    stats_json.field("ran", runs);
    stats_json.field("retried", retried);
    stats_json.field("worker_died", died);
    stats_json.close_obj();
    write_frame(fd, FrameType::kDone, stats_buf);
    logf(LogLevel::kInfo,
         "submit done: %lld cached, %lld joined, %lld ran, %lld died", hits,
         joins, runs, died);
  }

  /// The ffet.serve_stats.v1 snapshot.  One pass under mu for counters and
  /// slots; the phase histograms are snapshotted lock-free (atomics).
  std::string stats_json_impl() {
    const obs::HistSnapshot queue_wait = hist_queue_wait.snapshot();
    const obs::HistSnapshot cache_probe = hist_cache_probe.snapshot();
    const obs::HistSnapshot worker_run = hist_worker_run.snapshot();
    const std::uint64_t now_ns = obs::trace_now_ns();

    ServeStats counters;
    std::size_t queue_depth = 0, in_flight = 0;
    std::vector<Slot> slot_copy;
    {
      std::lock_guard<std::mutex> lk(mu);
      counters = st;
      queue_depth = queue.size();
      in_flight = flights.size();
      slot_copy = slots;
    }

    std::string out;
    flow::JsonBuilder j(out);
    j.open_obj();
    j.field("schema", "ffet.serve_stats.v1");
    j.field("pid", static_cast<long long>(::getpid()));
    j.field("uptime_ms",
            static_cast<double>(now_ns > start_ns ? now_ns - start_ns : 0) /
                1e6);
    j.field("workers", n_workers);
    j.field("queue_depth", static_cast<long long>(queue_depth));
    j.field("in_flight", static_cast<long long>(in_flight));
    j.field("cache_entries", cache.entries());
    j.open_nested("counters");
    j.field("requests", counters.requests);
    j.field("points", counters.points);
    j.field("cache_hits", counters.cache_hits);
    j.field("cache_misses", counters.cache_misses);
    j.field("single_flight_joins", counters.single_flight_joins);
    j.field("flow_runs", counters.flow_runs);
    j.field("retries", counters.retries);
    j.field("worker_deaths", counters.worker_deaths);
    j.field("worker_restarts", counters.worker_restarts);
    j.close_obj();
    j.open_nested("latency_ms");
    append_hist_json(out, j, "queue_wait", queue_wait);
    append_hist_json(out, j, "cache_probe", cache_probe);
    append_hist_json(out, j, "worker_run", worker_run);
    j.close_obj();
    j.open_array("worker_slots");
    for (std::size_t i = 0; i < slot_copy.size(); ++i) {
      const Slot& s = slot_copy[i];
      j.element();
      j.open_obj();
      j.field("slot", static_cast<long long>(i));
      j.field("pid", static_cast<long long>(s.pid > 0 ? s.pid : 0));
      j.field("state", s.running.empty() ? "idle" : "running");
      j.field("point", s.running);
      j.field("jobs", s.jobs);
      j.field("deaths", s.deaths);
      j.field("uptime_ms",
              static_cast<double>(s.pid > 0 && now_ns > s.spawn_ns
                                      ? now_ns - s.spawn_ns
                                      : 0) /
                  1e6);
      j.close_obj();
    }
    j.close_array();
    j.close_obj();
    return out;
  }

  void handle_client(int fd) {
    if (tracing) obs::set_thread_name("serve.client");
    while (true) {
      const auto frame = read_frame(fd);
      if (!frame) break;
      if (frame->type == FrameType::kSubmit) {
        handle_submit(fd, frame->payload);
      } else if (frame->type == FrameType::kPing) {
        write_frame(fd, FrameType::kDone, "{}");
      } else if (frame->type == FrameType::kStats) {
        write_frame(fd, FrameType::kDone, stats_json_impl());
      } else if (frame->type == FrameType::kShutdown) {
        write_frame(fd, FrameType::kDone, "{}");
        logf(LogLevel::kInfo, "shutdown requested by client");
        {
          std::lock_guard<std::mutex> lk(mu);
          shutdown_requested = true;
        }
        // wait() observes the flag and the daemon main calls stop();
        // stopping from this thread would join ourselves.
        flight_cv.notify_all();
        break;
      } else {
        write_frame(fd, FrameType::kError, "unexpected frame type");
        break;
      }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lk(mu);
    client_fds.erase(fd);
  }

  void accept_loop() {
    if (tracing) obs::set_thread_name("serve.acceptor");
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listen fd shut down by stop()
      }
      std::lock_guard<std::mutex> lk(mu);
      if (stopping) {
        ::close(fd);
        return;
      }
      client_fds.insert(fd);
      handlers.emplace_back([this, fd] { handle_client(fd); });
    }
  }
};

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

int Server::resolve_workers(int requested) {
  if (requested > 0) return std::min(requested, 64);
  if (const char* env = std::getenv("FFET_WORKERS")) {
    const int n = std::atoi(env);
    if (n > 0) return std::min(n, 64);
  }
  return 2;
}

bool Server::start(std::string* error) {
  Impl& im = *impl_;
  if (im.started) {
    if (error) *error = "server already started";
    return false;
  }
  // A client or worker that vanishes mid-write must surface as EPIPE, not
  // kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  im.n_workers = resolve_workers(im.opts.workers);
  im.start_ns = obs::trace_now_ns();

  if (const char* attrib = std::getenv("FFET_SERVE_ATTRIB");
      im.opts.attribution || (attrib && *attrib && std::strcmp(attrib, "0"))) {
    im.attribution = true;
    im.serve_ledger_path = flow::resolve_ledger_path(im.opts.ledger_path);
    im.logf(LogLevel::kInfo, "latency attribution on%s",
            im.serve_ledger_path.empty() ? "" : " (with serve ledger)");
  }

  im.tracing = !im.opts.trace_path.empty();
  if (im.tracing) {
    // The daemon records its own spans; workers dump theirs to private
    // files under <trace_path>.spans/ and the merger stitches everything
    // into one Chrome trace at stop().
    im.prev_tracing = obs::tracing_enabled();
    obs::set_tracing(true);
    im.span_dir = im.opts.trace_path + ".spans";
    if (::mkdir(im.span_dir.c_str(), 0777) != 0 && errno != EEXIST) {
      if (error) *error = "cannot create span dir " + im.span_dir;
      return false;
    }
    obs::set_thread_name("serve.main");
    im.logf(LogLevel::kInfo, "tracing to %s (span dir %s)",
            im.opts.trace_path.c_str(), im.span_dir.c_str());
  }
  if (im.cache.enabled()) {
    const int loaded = im.cache.load_index();
    im.logf(LogLevel::kInfo, "cache %s: %d entr%s loaded%s",
            im.cache.dir().c_str(), loaded,
            loaded == 1 ? "y" : "ies",
            im.cache.skipped_files() > 0 ? " (some files skipped)" : "");
  } else {
    im.logf(LogLevel::kInfo, "cache disabled");
  }

  im.listen_fd = listen_unix(im.opts.socket_path, error);
  if (im.listen_fd < 0) return false;

  // Fork the fleet BEFORE any request threads exist: each worker inherits
  // only the daemon's quiescent state plus its own socketpair end.
  im.slots.resize(static_cast<std::size_t>(im.n_workers));
  for (int i = 0; i < im.n_workers; ++i) {
    if (!im.fork_worker(im.slots[static_cast<std::size_t>(i)], error)) {
      stop();
      return false;
    }
  }
  for (int i = 0; i < im.n_workers; ++i) {
    im.monitors.emplace_back([this, i] { impl_->monitor_loop(i); });
  }
  im.acceptor = std::thread([this] { impl_->accept_loop(); });
  im.started = true;
  im.logf(LogLevel::kInfo, "listening on %s with %d worker(s)",
          im.opts.socket_path.c_str(),
          im.n_workers);
  return true;
}

void Server::wait() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lk(im.mu);
  // Polling interval exists only for signal_stop, which a signal handler
  // sets without being able to notify the condition variable.
  while (!im.shutdown_requested && !im.stopping &&
         !im.signal_stop.load(std::memory_order_relaxed)) {
    im.flight_cv.wait_for(lk, std::chrono::milliseconds(200));
  }
}

void Server::request_stop_from_signal() {
  impl_->signal_stop.store(true, std::memory_order_relaxed);
}

void Server::stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;

  {
    std::lock_guard<std::mutex> lk(im.mu);
    im.stopping = true;
    // Unresolved flights stay !done; handlers woken below observe stopping
    // and answer kError instead of hanging on them.
    im.queue.clear();
  }
  im.queue_cv.notify_all();
  im.flight_cv.notify_all();

  // Unblock the acceptor and any handler blocked in read_frame.  The
  // listen fd is shutdown() now but close()d only after the acceptor is
  // joined — the acceptor reads it unlocked, and closing early would both
  // race that read and allow the fd number to be reused under it.
  if (im.listen_fd >= 0) ::shutdown(im.listen_fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (const int fd : im.client_fds) ::shutdown(fd, SHUT_RDWR);
  }
  if (im.acceptor.joinable()) im.acceptor.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    handlers.swap(im.handlers);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }

  // Retire the fleet.  shutdown() first: unlike close() it wakes a
  // monitor blocked in read_frame on the pair, and the worker end sees
  // EOF; SIGTERM cuts short a worker mid-flow so the waitpid below never
  // waits out a long point.  Monitors are joined BEFORE any slot fd is
  // closed so a concurrently reused fd number can never be misrouted
  // into worker I/O.
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (const auto& s : im.slots) {
      if (s.fd >= 0) ::shutdown(s.fd, SHUT_RDWR);
      if (s.pid > 0) ::kill(s.pid, SIGTERM);
    }
  }
  for (std::thread& t : im.monitors) {
    if (t.joinable()) t.join();
  }
  im.monitors.clear();
  std::vector<Impl::Slot> slots;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    slots = im.slots;
    for (auto& s : im.slots) s = Impl::Slot{};
  }
  for (const auto& s : slots) {
    if (s.fd >= 0) ::close(s.fd);
  }
  for (const auto& s : slots) {
    if (s.pid > 0) ::waitpid(s.pid, nullptr, 0);
  }

  if (im.tracing) {
    // All monitors are joined, so every ingested span file is final; add
    // the daemon's own spans and write the single merged timeline.
    im.merger.set_process_name(static_cast<int>(::getpid()), "ffet_serve");
    im.merger.ingest_local(static_cast<int>(::getpid()));
    if (im.merger.write(im.opts.trace_path)) {
      im.logf(LogLevel::kInfo, "merged trace: %s (%zu span(s), %zu process(es))",
              im.opts.trace_path.c_str(), im.merger.span_count(),
              im.merger.process_count());
    } else {
      im.logf(LogLevel::kError, "cannot write merged trace %s",
              im.opts.trace_path.c_str());
    }
    ::rmdir(im.span_dir.c_str());  // best effort; non-empty on torn points
    obs::set_tracing(im.prev_tracing);
  }

  ::unlink(im.opts.socket_path.c_str());
  im.logf(LogLevel::kInfo, "stopped");
}

int Server::workers() const { return impl_->n_workers; }

std::vector<pid_t> Server::worker_pids() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<pid_t> pids;
  for (const auto& s : impl_->slots) {
    if (s.pid > 0) pids.push_back(s.pid);
  }
  return pids;
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->st;
}

int Server::cache_entries() const { return impl_->cache.entries(); }

std::string Server::stats_json() const { return impl_->stats_json_impl(); }

}  // namespace ffet::serve
