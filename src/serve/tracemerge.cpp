#include "serve/tracemerge.h"

#include <algorithm>
#include <cstdio>

#include "obs/numfmt.h"
#include "obs/trace.h"
#include "report/json.h"

namespace ffet::serve {

namespace {

bool read_file(const std::string& path, std::string& out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && error) *error = "read error on " + path;
  return ok;
}

}  // namespace

void TraceMerger::set_process_name(int pid, std::string name) {
  std::lock_guard<std::mutex> lk(m_);
  process_names_[pid] = std::move(name);
}

bool TraceMerger::ingest_file(const std::string& path, int pid,
                              std::string* error) {
  std::string text;
  if (!read_file(path, text, error)) return false;
  std::string perr;
  const auto doc = report::json::parse(text, &perr);
  if (!doc) {
    if (error) *error = path + ": " + perr;
    return false;
  }
  const report::json::Value* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (error) *error = path + ": no traceEvents array";
    return false;
  }
  // Pass 1: lane names from "M" thread_name metadata.
  std::map<int, std::string> lanes;
  for (const auto& e : events->items) {
    const auto* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str != "M") continue;
    const auto* name = e.find("name");
    if (name == nullptr || !name->is_string() || name->str != "thread_name") {
      continue;
    }
    const auto* args = e.find("args");
    const auto* lane = args != nullptr ? args->find("name") : nullptr;
    if (lane != nullptr && lane->is_string()) {
      lanes[static_cast<int>(e.member_number("tid", 0.0))] = lane->str;
    }
  }
  // Pass 2: the "X" complete events.
  std::vector<Span> taken;
  for (const auto& e : events->items) {
    const auto* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str != "X") continue;
    const auto* name = e.find("name");
    Span s;
    s.pid = pid;
    s.tid = static_cast<int>(e.member_number("tid", 0.0));
    s.name = name != nullptr && name->is_string() ? name->str : "";
    s.ts_us = e.member_number("ts", 0.0);
    s.dur_us = e.member_number("dur", 0.0);
    const auto it = lanes.find(s.tid);
    s.thread =
        it != lanes.end() ? it->second : "thread." + std::to_string(s.tid);
    taken.push_back(std::move(s));
  }
  std::lock_guard<std::mutex> lk(m_);
  spans_.insert(spans_.end(), std::make_move_iterator(taken.begin()),
                std::make_move_iterator(taken.end()));
  return true;
}

void TraceMerger::ingest_local(int pid) {
  const auto events = obs::snapshot_trace();
  std::lock_guard<std::mutex> lk(m_);
  spans_.reserve(spans_.size() + events.size());
  for (const auto& e : events) {
    Span s;
    s.pid = pid;
    s.tid = e.tid;
    s.thread = e.thread;
    s.name = e.name;
    s.ts_us = static_cast<double>(e.start_ns) / 1000.0;
    s.dur_us = static_cast<double>(e.dur_ns) / 1000.0;
    spans_.push_back(std::move(s));
  }
}

std::size_t TraceMerger::span_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return spans_.size();
}

std::size_t TraceMerger::process_count() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<int> pids;
  for (const Span& s : spans_) pids.push_back(s.pid);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  return pids.size();
}

std::string TraceMerger::to_json() const {
  std::vector<Span> spans;
  std::map<int, std::string> names;
  {
    std::lock_guard<std::mutex> lk(m_);
    spans = spans_;
    names = process_names_;
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
    return a.name < b.name;
  });

  std::string out;
  out.reserve(spans.size() * 112 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  // Process-name metadata for every pid that recorded something.
  int last_pid = -1;
  for (const Span& s : spans) {
    if (s.pid == last_pid) continue;
    last_pid = s.pid;
    const auto it = names.find(s.pid);
    const std::string pname =
        it != names.end() ? it->second : "pid." + std::to_string(s.pid);
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(s.pid) +
           ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    obs::append_escaped(out, pname);
    out += "\"}}";
  }
  // Thread-name metadata per (pid, tid) lane.
  last_pid = -1;
  int last_tid = -1;
  for (const Span& s : spans) {
    if (s.pid == last_pid && s.tid == last_tid) continue;
    last_pid = s.pid;
    last_tid = s.tid;
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(s.pid) +
           ",\"tid\":" + std::to_string(s.tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    obs::append_escaped(out, s.thread);
    out += "\"}}";
  }
  for (const Span& s : spans) {
    sep();
    out += "{\"ph\":\"X\",\"pid\":" + std::to_string(s.pid) +
           ",\"tid\":" + std::to_string(s.tid) + ",\"ts\":";
    obs::append_double(out, s.ts_us);
    out += ",\"dur\":";
    obs::append_double(out, s.dur_us);
    out += ",\"cat\":\"ffet\",\"name\":\"";
    obs::append_escaped(out, s.name);
    out += "\"}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceMerger::write(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

}  // namespace ffet::serve
