// worker.h — the forked worker's half of the service.
//
// Each worker is a fork of the daemon that loops on one socketpair fd:
// read a kJob frame (a FlowConfig as JSON), run the full flow for it, and
// answer with a kResult frame holding the point's flow-report line.  A
// worker owns nothing shared — if the flow segfaults, OOMs, or the test
// harness SIGKILLs it, only this process dies; the daemon reaps it with
// waitpid, forks a replacement and retries the in-flight point.

#pragma once

namespace ffet::serve {

/// The worker main loop.  Never returns: _exit(0) on daemon EOF, _exit(1)
/// on a protocol error.  `fd` is the worker's end of the socketpair.
[[noreturn]] void worker_loop(int fd);

}  // namespace ffet::serve
