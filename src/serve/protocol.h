// protocol.h — the framed wire protocol of the sweep service.
//
// One daemon (`ffet_serve`) talks to clients over a Unix-domain stream
// socket and to its forked workers over socketpairs, both with the same
// length-prefixed framing:
//
//   [u32 type][u32 payload_length][payload bytes]     (little-endian)
//
// Client -> daemon:
//   kSubmit    payload = JSON array of FlowConfig objects (config_json.h),
//              or {"trace_id":"...","configs":[...]} when the client stamps
//              the submission with a trace id (see config_codec.h)
//   kPing      empty; daemon answers kDone (readiness probe)
//   kStats     empty; daemon answers kDone with an ffet.serve_stats.v1
//              JSON snapshot (live introspection, never blocks on work)
//   kShutdown  empty; daemon answers kDone, then exits its accept loop
//
// Daemon -> client (per kSubmit, in sweep-point order):
//   kResult    payload = [u32 index][u32 flags][flow-report line bytes]
//   kDone      payload = JSON stats object (points, cache_hits, ...)
//   kError     payload = human-readable message (request rejected)
//
// Daemon <-> worker (socketpair):
//   kJob       payload = [u32 attempt][u64 trace_epoch_raw_ns]
//              [u32 config_length][config JSON][span file path bytes];
//              epoch/span path are zero/empty when tracing is off
//   kResult    payload = [u32 0][u32 0][flow-report line bytes]
//
// Frames are small (one flow-report line is ~2 kB), so reads/writes are
// simple full-buffer loops; a peer that dies mid-frame surfaces as a short
// read, which the daemon treats as worker/client death.  Payloads are
// capped (kMaxPayload) so a corrupt header cannot make a reader allocate
// gigabytes.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ffet::serve {

enum class FrameType : std::uint32_t {
  kSubmit = 1,
  kResult = 2,
  kDone = 3,
  kError = 4,
  kPing = 5,
  kShutdown = 6,
  kJob = 7,
  kStats = 8,
};

/// Largest payload either side will accept (a submission of ~100k sweep
/// points at ~300 B of config JSON each still fits).
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Flags carried in a kResult frame (bitmask).
enum ResultFlag : std::uint32_t {
  kFlagCached = 1u << 0,      ///< served from the persistent result cache
  kFlagJoined = 1u << 1,      ///< joined an in-flight identical point
  kFlagRetried = 1u << 2,     ///< first worker died; point re-ran and passed
  kFlagWorkerDied = 1u << 3,  ///< all attempts died; line is synthetic
};

/// Write one frame to `fd`, looping over partial writes.  False on any
/// write error (EPIPE when the peer is gone — callers must have SIGPIPE
/// ignored, the daemon does this at start()).
bool write_frame(int fd, FrameType type, std::string_view payload);

/// Read one frame from `fd`.  nullopt on EOF, short read, oversized or
/// unknown-type header — for the daemon every one of those means "peer is
/// gone or corrupt", which is handled identically.
std::optional<Frame> read_frame(int fd);

/// Pack / unpack the [u32 index][u32 flags][line] result payload.
std::string pack_result(std::uint32_t index, std::uint32_t flags,
                        std::string_view line);
bool unpack_result(std::string_view payload, std::uint32_t& index,
                   std::uint32_t& flags, std::string& line);

/// Pack / unpack the job payload.  `trace_epoch_raw_ns` is the daemon's
/// trace epoch (obs::trace_epoch_raw_ns()) and `span_path` the file the
/// worker must dump its spans to after the job; both zero/empty when the
/// job is untraced.
std::string pack_job(std::uint32_t attempt, std::string_view config_json,
                     std::uint64_t trace_epoch_raw_ns = 0,
                     std::string_view span_path = {});
bool unpack_job(std::string_view payload, std::uint32_t& attempt,
                std::string& config_json, std::uint64_t& trace_epoch_raw_ns,
                std::string& span_path);

/// Create, bind and listen on a Unix-domain socket at `path` (unlinking a
/// stale socket first).  Returns the listening fd or -1 (with `error`).
int listen_unix(const std::string& path, std::string* error);

/// Connect to the daemon's socket.  Returns the fd or -1.
int connect_unix(const std::string& path, std::string* error);

}  // namespace ffet::serve
