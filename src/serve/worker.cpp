#include "serve/worker.h"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "flow/flow.h"
#include "flow/report_json.h"
#include "obs/trace.h"
#include "serve/config_codec.h"
#include "serve/protocol.h"

namespace ffet::serve {

namespace {

/// Deterministic crash hooks for the crash-isolation tests:
///   FFET_SERVE_TEST_CRASH=<substr>         SIGKILL ourselves mid-point on
///                                          the *first* attempt of any
///                                          label containing <substr> (the
///                                          retry then succeeds);
///   FFET_SERVE_TEST_CRASH_ALWAYS=<substr>  die on every attempt (the
///                                          daemon must report the point
///                                          as worker_died and survive).
void maybe_crash(const std::string& label, std::uint32_t attempt) {
  const char* once = std::getenv("FFET_SERVE_TEST_CRASH");
  const char* always = std::getenv("FFET_SERVE_TEST_CRASH_ALWAYS");
  const bool hit_once =
      once && *once && attempt == 0 && label.find(once) != std::string::npos;
  const bool hit_always =
      always && *always && label.find(always) != std::string::npos;
  if (hit_once || hit_always) {
    ::raise(SIGKILL);  // indistinguishable from a real segfault/OOM kill
  }
}

}  // namespace

void worker_loop(int fd) {
  // The daemon streams result lines back to clients itself; a worker
  // appending to the process-wide report/trace sinks would duplicate every
  // line.  The ledger stays on (per env) — its appends are multi-process-
  // safe and "one ledger line per flow run" is exactly what a worker does.
  ::unsetenv("FFET_FLOW_REPORT");
  ::unsetenv("FFET_TRACE");

  while (true) {
    const auto frame = read_frame(fd);
    if (!frame) _exit(0);  // daemon closed the pair: clean shutdown
    if (frame->type != FrameType::kJob) _exit(1);

    std::uint32_t attempt = 0;
    std::string config_json;
    std::uint64_t trace_epoch = 0;
    std::string span_path;
    if (!unpack_job(frame->payload, attempt, config_json, trace_epoch,
                    span_path)) {
      _exit(1);
    }

    std::string error;
    auto cfg = configs_from_json_text("[" + config_json + "]", &error);
    if (!cfg || cfg->size() != 1) {
      // The daemon validated the submission; a bad job here is a protocol
      // bug, not a client error.  Die loudly — the daemon will flag the
      // point rather than wedge.
      _exit(1);
    }
    flow::FlowConfig config = (*cfg)[0];
    // The fleet owns the parallelism: an auto-thread point would spawn one
    // pool per worker times one worker per core.  Explicit requests are
    // honored (mirrors flow::run_sweep's pin_point_threads).
    if (config.threads == 0) config.threads = 1;
    // Per-point sinks are daemon-side concerns; a worker writing trace
    // files would race its siblings on one path.
    config.trace_path.clear();
    config.flow_report_path.clear();

    maybe_crash(config.label(), attempt);

    // Traced job: record this flow's spans against the daemon's shared
    // epoch and dump them to the private span file the daemon named — it
    // ingests (and unlinks) the file when the point completes.
    const bool traced = !span_path.empty();
    if (traced) {
      if (trace_epoch != 0) obs::set_trace_epoch_raw_ns(trace_epoch);
      obs::set_thread_name("worker." + std::to_string(::getpid()));
      obs::clear_trace();
      obs::set_tracing(true);
    }
    const flow::FlowResult res = flow::run_flow(config);
    if (traced) {
      obs::set_tracing(false);
      obs::dump_trace(span_path);
      obs::clear_trace();
    }
    const std::string line = flow::flow_report_json(res);
    if (!write_frame(fd, FrameType::kResult, pack_result(0, 0, line))) {
      _exit(0);  // daemon went away mid-result
    }
  }
}

}  // namespace ffet::serve
