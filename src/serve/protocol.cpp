#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ffet::serve {

namespace {

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool known_type(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(FrameType::kSubmit) &&
         t <= static_cast<std::uint32_t>(FrameType::kStats);
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

bool fill_sockaddr(const std::string& path, sockaddr_un& addr,
                   std::string* error) {
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool write_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxPayload) return false;
  std::string header;
  header.reserve(8);
  put_u32(header, static_cast<std::uint32_t>(type));
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  // Header + payload in one buffer: one write for small frames keeps the
  // syscall count down on the worker hot path.
  if (payload.size() <= 64 * 1024) {
    header.append(payload);
    return write_all(fd, header.data(), header.size());
  }
  return write_all(fd, header.data(), header.size()) &&
         write_all(fd, payload.data(), payload.size());
}

std::optional<Frame> read_frame(int fd) {
  unsigned char header[8];
  if (!read_all(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t type = get_u32(header);
  const std::uint32_t length = get_u32(header + 4);
  if (!known_type(type) || length > kMaxPayload) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.payload.resize(length);
  if (length > 0 && !read_all(fd, f.payload.data(), length)) {
    return std::nullopt;
  }
  return f;
}

std::string pack_result(std::uint32_t index, std::uint32_t flags,
                        std::string_view line) {
  std::string out;
  out.reserve(8 + line.size());
  put_u32(out, index);
  put_u32(out, flags);
  out.append(line);
  return out;
}

bool unpack_result(std::string_view payload, std::uint32_t& index,
                   std::uint32_t& flags, std::string& line) {
  if (payload.size() < 8) return false;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(payload.data());
  index = get_u32(p);
  flags = get_u32(p + 4);
  line.assign(payload.substr(8));
  return true;
}

std::string pack_job(std::uint32_t attempt, std::string_view config_json,
                     std::uint64_t trace_epoch_raw_ns,
                     std::string_view span_path) {
  std::string out;
  out.reserve(16 + config_json.size() + span_path.size());
  put_u32(out, attempt);
  put_u64(out, trace_epoch_raw_ns);
  put_u32(out, static_cast<std::uint32_t>(config_json.size()));
  out.append(config_json);
  out.append(span_path);
  return out;
}

bool unpack_job(std::string_view payload, std::uint32_t& attempt,
                std::string& config_json, std::uint64_t& trace_epoch_raw_ns,
                std::string& span_path) {
  if (payload.size() < 16) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  attempt = get_u32(p);
  trace_epoch_raw_ns = get_u64(p + 4);
  const std::uint32_t cfg_len = get_u32(p + 12);
  if (payload.size() - 16 < cfg_len) return false;
  config_json.assign(payload.substr(16, cfg_len));
  span_path.assign(payload.substr(16 + cfg_len));
  return true;
}

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = "socket() failed";
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error) *error = "cannot bind " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) < 0) {
    if (error) *error = "cannot listen on " + path;
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = "socket() failed";
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error) {
      *error = "cannot connect to " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace ffet::serve
