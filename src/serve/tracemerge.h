// tracemerge.h — merge per-process span dumps into one Chrome trace.
//
// The sweep service runs one flow per forked worker, so a traced sweep
// scatters spans across processes: the daemon records queueing / cache /
// dispatch spans in its own obs buffers, and each worker dumps its flow
// spans to a private span file (obs::dump_trace) after every traced job.
// All processes share one trace epoch (obs::set_trace_epoch_raw_ns, carried
// in the kJob frame), so their timestamps are directly comparable.
//
// TraceMerger collects those pieces — parsing worker span files with the
// same report::json parser that mirrors the emitters — and serializes one
// Chrome trace-event JSON where, unlike the single-process obs dump, `pid`
// is the real process id: the daemon and every worker render as separate
// process groups ("ffet_serve" / "worker.<pid>" lanes) on one timeline.
//
// Thread-safe: the daemon's monitor threads ingest span files concurrently
// as points complete.

#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ffet::serve {

class TraceMerger {
 public:
  struct Span {
    int pid = 0;
    int tid = 0;
    std::string thread;  ///< lane name
    std::string name;
    double ts_us = 0.0;
    double dur_us = 0.0;
  };

  /// Label a process group in the merged trace (e.g. "ffet_serve").
  void set_process_name(int pid, std::string name);

  /// Parse a Chrome trace file dumped by obs::dump_trace in process `pid`
  /// and take its spans.  False (with `error`) on I/O or parse failure; the
  /// merger is unchanged on failure.
  bool ingest_file(const std::string& path, int pid,
                   std::string* error = nullptr);

  /// Take the calling process's own recorded spans (obs::snapshot_trace())
  /// under `pid`.
  void ingest_local(int pid);

  std::size_t span_count() const;
  std::size_t process_count() const;

  /// Merged Chrome trace-event JSON.  Deterministic for a given set of
  /// ingested spans: events sort by (pid, tid, ts, dur, name).
  std::string to_json() const;

  /// Write to_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  mutable std::mutex m_;
  std::vector<Span> spans_;
  std::map<int, std::string> process_names_;
};

}  // namespace ffet::serve
