// client.h — the library half of `ffet_submit`.
//
// A thin synchronous client over protocol.h: connect to the daemon's Unix
// socket, submit a sweep (a vector of FlowConfigs), collect the streamed
// per-point result lines in order.  Used by the submit CLI, bench_serve
// and the tests; keeping it a library means every caller exercises the
// same framing code the daemon speaks.

#pragma once

#include <string>
#include <vector>

#include "flow/flow.h"

namespace ffet::serve {

/// One streamed sweep-point result.
struct ResultLine {
  std::uint32_t index = 0;  ///< position in the submitted sweep
  bool cached = false;      ///< served from the persistent cache
  bool joined = false;      ///< deduped onto a concurrent identical point
  bool retried = false;     ///< re-ran after a worker death, then passed
  bool worker_died = false; ///< synthetic invalid line; all attempts died
  std::string line;         ///< the ffet.flow_report.v1 JSON line
};

/// The daemon's kDone stats for one submission.
struct SubmitStats {
  long long points = 0;
  long long cache_hits = 0;
  long long joined = 0;
  long long ran = 0;
  long long retried = 0;
  long long worker_died = 0;
};

/// Submit `configs` and collect every result line (daemon streams them in
/// point order; `out` preserves that order).  False + `error` on connect,
/// protocol or daemon-side (kError) failure.  A non-empty `trace_id` stamps
/// the submission (the daemon names its request span with it) — the
/// payload then uses the {"trace_id":...,"configs":[...]} wrapper; empty
/// keeps the PR 9 bare-array wire shape.
bool submit_sweep(const std::string& socket_path,
                  const std::vector<flow::FlowConfig>& configs,
                  std::vector<ResultLine>* out, SubmitStats* stats,
                  std::string* error, const std::string& trace_id = {});

/// Readiness probe: true once the daemon answers a kPing.  When `rtt_ms`
/// is non-null it receives the request->reply round-trip latency.
bool ping(const std::string& socket_path, std::string* error = nullptr,
          double* rtt_ms = nullptr);

/// Fetch the daemon's live ffet.serve_stats.v1 snapshot (kStats verb).
bool query_stats(const std::string& socket_path, std::string* stats_json,
                 std::string* error = nullptr);

/// Ask the daemon to exit its serve loop.
bool request_shutdown(const std::string& socket_path,
                      std::string* error = nullptr);

}  // namespace ffet::serve
