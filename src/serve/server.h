// server.h — the `ffet_serve` daemon core.
//
// One Server owns:
//
//   * a Unix-domain listening socket (protocol.h framing) with one handler
//     thread per connected client;
//   * a fleet of forked worker processes (worker.h), one monitor thread
//     per worker slot, fed from a shared job queue;
//   * the persistent result cache (cache.h) plus the in-daemon
//     single-flight table: concurrent identical submissions — same
//     FlowConfig::label() — resolve to ONE flow run, every other request
//     joins the in-flight entry and is answered from its result;
//   * crash isolation: a worker that segfaults, OOMs, or is SIGKILLed is
//     reaped with waitpid and replaced by a fresh fork; its in-flight
//     point is retried once on the replacement and otherwise answered
//     with a synthetic invalid line whose reason names worker_died.  The
//     daemon, the cache, and every other point survive.
//
// Results stream back per completed point, in submission (point) order —
// deterministic regardless of which worker finishes first.
//
// The same class backs the standalone daemon binary, bench_serve and the
// tests (which run a Server inside the test process and poke its workers).

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

namespace ffet::serve {

struct ServeOptions {
  std::string socket_path = ".ffet_serve.sock";
  /// Worker processes.  0 = the FFET_WORKERS environment variable, or 2
  /// when that is unset/invalid.
  int workers = 0;
  /// Result-cache directory; empty disables persistence (single-flight
  /// dedup still applies within the daemon's lifetime).
  std::string cache_dir = ".ffet_serve_cache";
  /// Attempts per point (first run + retries on a died worker).
  int max_attempts = 2;
  /// Daemon log sink; nullptr = stderr.
  std::FILE* log = nullptr;
  /// Merged cross-process trace output path; empty = tracing off.  When
  /// set, the daemon records its own spans (queueing, cache probes, worker
  /// dispatch), runs every job with a per-process span file and a shared
  /// trace epoch, and writes ONE Chrome trace covering the daemon plus all
  /// worker pids at stop().  The ffet_serve binary maps FFET_TRACE here.
  std::string trace_path;
  /// Attach the "serve" latency-attribution object to every streamed
  /// flow-report line (queue_ms / cache_ms / run_ms / retries / worker_pid
  /// / cache_hit).  Also enabled by FFET_SERVE_ATTRIB=1.  Off by default:
  /// served lines stay byte-identical to an in-process run.
  bool attribution = false;
  /// When attribution is on and this is non-empty, the daemon also appends
  /// one kind="serve" ffet.ledger.v1 line per served point here, so
  /// `ffet_report trend` can watch service-latency drift.
  std::string ledger_path;
};

/// Cumulative counters since start() (mirrored to obs serve.* metrics when
/// metrics are enabled).
struct ServeStats {
  long long requests = 0;      ///< kSubmit frames accepted
  long long points = 0;        ///< sweep points across all requests
  long long cache_hits = 0;
  long long cache_misses = 0;  ///< points that needed a flow run scheduled
  long long single_flight_joins = 0;
  long long flow_runs = 0;     ///< jobs completed by a worker
  long long retries = 0;       ///< points re-run after a worker death
  long long worker_deaths = 0;
  long long worker_restarts = 0;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen, load the cache index, fork the fleet, start threads.
  bool start(std::string* error);

  /// Block until a client sends kShutdown, stop() is called elsewhere, or
  /// request_stop_from_signal() fires.
  void wait();

  /// Async-signal-safe shutdown request (a lock-free atomic store): makes
  /// wait() return so the main thread can run the actual stop().
  void request_stop_from_signal();

  /// Tear down: close the socket, fail unresolved points, retire workers
  /// (EOF on their pair, then reap), join threads.  Idempotent.
  void stop();

  int workers() const;
  /// Live worker pids (test hook: the crash-isolation test SIGKILLs one).
  std::vector<pid_t> worker_pids() const;
  ServeStats stats() const;
  int cache_entries() const;

  /// The live ffet.serve_stats.v1 snapshot (what the kStats verb answers):
  /// queue depth, in-flight points, per-slot worker state, the ServeStats
  /// counters, and p50/p95/p99 latency histograms for the queue-wait,
  /// cache-probe and worker-run phases.  Safe to call from any thread.
  std::string stats_json() const;

  /// Resolve the fleet size an options struct implies (FFET_WORKERS etc.).
  static int resolve_workers(int requested);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ffet::serve
