#include "serve/cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "report/json.h"

namespace ffet::serve {

namespace {

/// The "label" member of a stored flow-report line; empty when the line is
/// not parseable — the caller then discards the file.
std::string line_label(const std::string& line) {
  const auto doc = report::json::parse(line);
  if (!doc || !doc->is_object()) return {};
  const report::json::Value* v = doc->find("label");
  return v && v->is_string() ? v->str : std::string();
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// First line of `path`, or empty when missing/unreadable.
std::string read_first_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (!f || !std::getline(f, line)) return {};
  return line;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::entry_path(const std::string& label) const {
  const std::string hex = hash_hex(fnv1a64(label));
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".json";
}

int ResultCache::load_index() {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  index_.clear();
  skipped_ = 0;
  DIR* top = ::opendir(dir_.c_str());
  if (!top) return 0;
  std::vector<std::string> subdirs;
  while (const dirent* e = ::readdir(top)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    subdirs.push_back(dir_ + "/" + name);
  }
  ::closedir(top);
  int loaded = 0;
  for (const std::string& sub : subdirs) {
    DIR* d = ::opendir(sub.c_str());
    if (!d) continue;  // stray plain file at the top level
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() < 6 || name.substr(name.size() - 5) != ".json") continue;
      std::ifstream f(sub + "/" + name);
      std::string line;
      if (!f || !std::getline(f, line)) {
        ++skipped_;
        continue;
      }
      const std::string label = line_label(line);
      if (label.empty()) {
        ++skipped_;  // torn or foreign file — never serve it
        continue;
      }
      index_[label] = std::move(line);
      ++loaded;
    }
    ::closedir(d);
  }
  return loaded;
}

bool ResultCache::lookup(const std::string& label, std::string* line) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(label);
  if (it == index_.end()) return false;
  if (line) *line = it->second;
  return true;
}

bool ResultCache::store(const std::string& label, const std::string& line) {
  if (!enabled()) return false;
  // mu_ is held across the disk write too: two colliding labels probing
  // suffixed paths concurrently must not pick the same file.  Stores are
  // rare (one per completed flow run) so the brief lookup stall is fine.
  std::lock_guard<std::mutex> lk(mu_);
  index_[label] = line;
  const std::string base = entry_path(label);
  const std::size_t slash = base.find_last_of('/');
  ::mkdir(dir_.c_str(), 0777);
  ::mkdir(base.substr(0, slash).c_str(), 0777);
  // An FNV-64 filename collision must not let this label's store clobber
  // another label's entry: only overwrite a file that is unreadable or
  // already carries this label, else probe "-1", "-2", ... suffixes.
  // load_index keys by the label stored *inside* each file, so a suffixed
  // entry is indexed exactly like a base one.
  std::string path;
  for (int i = 0; i < 16 && path.empty(); ++i) {
    std::string cand = base;
    if (i > 0) cand.insert(cand.size() - 5, "-" + std::to_string(i));
    const std::string existing = read_first_line(cand);
    if (existing.empty() || line_label(existing) == label) path = cand;
  }
  if (path.empty()) return false;  // 16 distinct labels on one hash
  // Temp-then-rename: the entry appears atomically or not at all.  The
  // temp name carries the pid so two daemons on one cache dir (unusual but
  // legal — rename is last-writer-wins on identical content) don't collide.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << line << '\n';
    if (!f.good()) {
      ::unlink(tmp.c_str());
      return false;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

int ResultCache::entries() {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(index_.size());
}

}  // namespace ffet::serve
