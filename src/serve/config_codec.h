// config_codec.h — FlowConfig JSON parse side (mirror of flow/config_json).
//
// Reuses the strict recursive-descent parser from src/report (the exact
// mirror of the to_chars emitters), so a config that round-trips through
// the wire reconstructs bit-identically: every double re-parses to the same
// value, and FlowConfig::label() — the service cache key — is byte-stable
// across the client/daemon/worker hops.
//
// Parsing is strict about types but tolerant about presence: absent fields
// keep their FlowConfig defaults (a newer client may omit what it does not
// set), unknown fields are an error (a typo'd knob silently ignored would
// alias distinct sweeps onto one cache key).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "report/json.h"

namespace ffet::serve {

/// Parse one config object ({"tech":"ffet",...}).  nullopt + `error` on a
/// type mismatch or unknown field.
std::optional<flow::FlowConfig> config_from_json(
    const report::json::Value& obj, std::string* error = nullptr);

/// Parse a submission payload: a JSON array of config objects.
std::optional<std::vector<flow::FlowConfig>> configs_from_json_text(
    std::string_view text, std::string* error = nullptr);

/// A parsed kSubmit payload.  Both wire shapes are accepted: the bare
/// config array of PR 9 clients, and the {"trace_id":"...","configs":[...]}
/// wrapper a tracing client sends to stamp the submission.
struct Submission {
  std::string trace_id;  ///< empty when the client sent a bare array
  std::vector<flow::FlowConfig> configs;
};

std::optional<Submission> submission_from_json_text(
    std::string_view text, std::string* error = nullptr);

}  // namespace ffet::serve
