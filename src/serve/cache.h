// cache.h — the daemon's persistent, content-addressed result cache.
//
// One flow run per distinct FlowConfig, ever: results are keyed on
// FlowConfig::label() (the same string that keys the characterization
// cache and the bench baselines — every PPA-changing knob is encoded in
// it; see the member census in flow/config_json.h).  Each entry is one
// file holding the point's flow-report line:
//
//   <dir>/<hh>/<fnv64 hex>[-N].json    (hh = first two hash hex digits)
//
// The stored line carries its own "label" field, which is the source of
// truth: load_index keys the index by it, and store never overwrites a
// readable file carrying a *different* label — an FNV-64 filename
// collision diverts to a "-1", "-2", ... suffixed sibling instead of
// clobbering the other label's entry.  A stale or foreign file is
// detected on read (no parseable label -> skipped) rather than served
// wrong.  Writes go through a temp file +
// rename, so a daemon killed mid-store can never leave a torn entry — a
// half-written temp file is simply never renamed in.  The in-memory index
// (label -> line) is loaded by scanning the directory once at startup and
// is write-through afterwards.
//
// Thread-safe; the single-flight layer above it (server.cpp) is what
// guarantees *at most one* flow run per label even under concurrent
// identical submissions — the cache itself only guarantees safe
// concurrent lookup/store.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ffet::serve {

/// FNV-1a 64-bit — the content address of a label.
std::uint64_t fnv1a64(std::string_view s);

class ResultCache {
 public:
  /// `dir` empty disables the cache (lookup always misses, store drops).
  explicit ResultCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Scan the cache directory into the in-memory index.  Unreadable or
  /// label-mismatched files are skipped (and counted); returns the number
  /// of entries loaded.
  int load_index();

  /// The flow-report line cached for `label`, if any.
  bool lookup(const std::string& label, std::string* line);

  /// Persist `line` (one flow-report JSON line, no trailing newline) for
  /// `label` and add it to the index.  Returns false on I/O failure — the
  /// index is still updated so the running daemon stays consistent.
  bool store(const std::string& label, const std::string& line);

  int entries();
  int skipped_files() const { return skipped_; }

 private:
  std::string entry_path(const std::string& label) const;

  std::string dir_;
  std::mutex mu_;
  std::map<std::string, std::string> index_;  ///< label -> report line
  int skipped_ = 0;
};

}  // namespace ffet::serve
