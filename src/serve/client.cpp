#include "serve/client.h"

#include <chrono>

#include <unistd.h>

#include "flow/config_json.h"
#include "obs/numfmt.h"
#include "report/json.h"
#include "serve/protocol.h"

namespace ffet::serve {

namespace {

/// RAII socket: every early return below must close the fd.
struct Conn {
  int fd = -1;
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

long long stat_field(const report::json::Value& obj, const char* key) {
  const report::json::Value* v = obj.find(key);
  return v && v->is_number() ? static_cast<long long>(v->number) : 0;
}

/// One-frame request / one-frame reply exchanges (ping, stats, shutdown).
/// `reply_payload` receives the kDone payload; `rtt_ms` the write->reply
/// round trip.
bool simple_exchange(const std::string& socket_path, FrameType type,
                     std::string* error,
                     std::string* reply_payload = nullptr,
                     double* rtt_ms = nullptr) {
  Conn c;
  c.fd = connect_unix(socket_path, error);
  if (c.fd < 0) return false;
  const auto t0 = std::chrono::steady_clock::now();
  if (!write_frame(c.fd, type, "")) {
    if (error) *error = "write failed";
    return false;
  }
  auto reply = read_frame(c.fd);
  if (rtt_ms) {
    *rtt_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  }
  if (!reply || reply->type != FrameType::kDone) {
    if (error) {
      *error = reply && reply->type == FrameType::kError
                   ? reply->payload
                   : std::string("daemon closed the connection");
    }
    return false;
  }
  if (reply_payload) *reply_payload = std::move(reply->payload);
  return true;
}

}  // namespace

bool submit_sweep(const std::string& socket_path,
                  const std::vector<flow::FlowConfig>& configs,
                  std::vector<ResultLine>* out, SubmitStats* stats,
                  std::string* error, const std::string& trace_id) {
  if (out) out->clear();
  if (configs.empty()) {
    if (error) *error = "empty sweep";
    return false;
  }
  Conn c;
  c.fd = connect_unix(socket_path, error);
  if (c.fd < 0) return false;
  std::string payload = flow::configs_to_json(configs);
  if (!trace_id.empty()) {
    std::string wrapped = "{\"trace_id\":\"";
    obs::append_escaped(wrapped, trace_id);
    wrapped += "\",\"configs\":";
    wrapped += payload;
    wrapped += '}';
    payload = std::move(wrapped);
  }
  if (!write_frame(c.fd, FrameType::kSubmit, payload)) {
    if (error) *error = "submit write failed";
    return false;
  }
  while (true) {
    const auto frame = read_frame(c.fd);
    if (!frame) {
      if (error) *error = "daemon closed the connection mid-sweep";
      return false;
    }
    if (frame->type == FrameType::kResult) {
      ResultLine r;
      std::uint32_t flags = 0;
      if (!unpack_result(frame->payload, r.index, flags, r.line)) {
        if (error) *error = "malformed result frame";
        return false;
      }
      r.cached = (flags & kFlagCached) != 0;
      r.joined = (flags & kFlagJoined) != 0;
      r.retried = (flags & kFlagRetried) != 0;
      r.worker_died = (flags & kFlagWorkerDied) != 0;
      if (out) out->push_back(std::move(r));
      continue;
    }
    if (frame->type == FrameType::kDone) {
      if (stats) {
        *stats = SubmitStats{};
        if (const auto doc = report::json::parse(frame->payload);
            doc && doc->is_object()) {
          stats->points = stat_field(*doc, "points");
          stats->cache_hits = stat_field(*doc, "cache_hits");
          stats->joined = stat_field(*doc, "joined");
          stats->ran = stat_field(*doc, "ran");
          stats->retried = stat_field(*doc, "retried");
          stats->worker_died = stat_field(*doc, "worker_died");
        }
      }
      if (out && out->size() != configs.size()) {
        if (error) {
          *error = "daemon streamed " + std::to_string(out->size()) +
                   " results for " + std::to_string(configs.size()) +
                   " points";
        }
        return false;
      }
      return true;
    }
    if (error) {
      *error = frame->type == FrameType::kError
                   ? frame->payload
                   : std::string("unexpected frame from daemon");
    }
    return false;
  }
}

bool ping(const std::string& socket_path, std::string* error,
          double* rtt_ms) {
  return simple_exchange(socket_path, FrameType::kPing, error, nullptr,
                         rtt_ms);
}

bool query_stats(const std::string& socket_path, std::string* stats_json,
                 std::string* error) {
  return simple_exchange(socket_path, FrameType::kStats, error, stats_json);
}

bool request_shutdown(const std::string& socket_path, std::string* error) {
  return simple_exchange(socket_path, FrameType::kShutdown, error);
}

}  // namespace ffet::serve
