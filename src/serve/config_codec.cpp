#include "serve/config_codec.h"

#include <type_traits>
#include <utility>

namespace ffet::serve {

namespace {

using report::json::Value;

bool set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

bool read_field(const std::string& key, const Value& v, flow::FlowConfig& cfg,
                std::string* error) {
  const auto num = [&](auto& dst) {
    if (!v.is_number()) {
      return set_error(error, "config field \"" + key + "\" must be a number");
    }
    dst = static_cast<std::remove_reference_t<decltype(dst)>>(v.number);
    return true;
  };
  const auto str = [&](std::string& dst) {
    if (!v.is_string()) {
      return set_error(error, "config field \"" + key + "\" must be a string");
    }
    dst = v.str;
    return true;
  };
  const auto boolean = [&](bool& dst) {
    if (!v.is_bool()) {
      return set_error(error, "config field \"" + key + "\" must be a bool");
    }
    dst = v.boolean;
    return true;
  };

  if (key == "tech") {
    if (!v.is_string()) {
      return set_error(error, "config field \"tech\" must be a string");
    }
    if (v.str == "ffet") {
      cfg.tech_kind = tech::TechKind::Ffet3p5T;
    } else if (v.str == "cfet") {
      cfg.tech_kind = tech::TechKind::Cfet4T;
    } else {
      return set_error(error, "unknown tech \"" + v.str + "\"");
    }
    return true;
  }
  if (key == "front_layers") return num(cfg.front_layers);
  if (key == "back_layers") return num(cfg.back_layers);
  if (key == "backside_input_fraction") {
    return num(cfg.backside_input_fraction);
  }
  if (key == "target_freq_ghz") return num(cfg.target_freq_ghz);
  if (key == "utilization") return num(cfg.utilization);
  if (key == "aspect_ratio") return num(cfg.aspect_ratio);
  if (key == "rv32_registers") return num(cfg.rv32_registers);
  if (key == "seed") return num(cfg.seed);
  if (key == "simulate_activity") return boolean(cfg.simulate_activity);
  if (key == "activity_cycles") return num(cfg.activity_cycles);
  if (key == "eco_passes") return num(cfg.eco_passes);
  if (key == "threads") return num(cfg.threads);
  if (key == "trace_path") return str(cfg.trace_path);
  if (key == "flow_report_path") return str(cfg.flow_report_path);
  if (key == "ledger_path") return str(cfg.ledger_path);
  // Unknown field: reject.  A knob the daemon does not know cannot key the
  // cache, so accepting it would alias distinct sweeps.
  return set_error(error, "unknown config field \"" + key + "\"");
}

}  // namespace

std::optional<flow::FlowConfig> config_from_json(const Value& obj,
                                                 std::string* error) {
  if (!obj.is_object()) {
    set_error(error, "config point must be a JSON object");
    return std::nullopt;
  }
  flow::FlowConfig cfg;
  for (const auto& [key, v] : obj.members) {
    if (!read_field(key, v, cfg, error)) return std::nullopt;
  }
  return cfg;
}

namespace {

std::optional<std::vector<flow::FlowConfig>> configs_from_array(
    const Value& arr, std::string* error) {
  if (!arr.is_array()) {
    set_error(error, "submission must be a JSON array of config objects");
    return std::nullopt;
  }
  std::vector<flow::FlowConfig> out;
  out.reserve(arr.items.size());
  for (std::size_t i = 0; i < arr.items.size(); ++i) {
    auto cfg = config_from_json(arr.items[i], error);
    if (!cfg) {
      if (error) *error = "point " + std::to_string(i) + ": " + *error;
      return std::nullopt;
    }
    out.push_back(std::move(*cfg));
  }
  return out;
}

}  // namespace

std::optional<std::vector<flow::FlowConfig>> configs_from_json_text(
    std::string_view text, std::string* error) {
  std::string perr;
  const auto doc = report::json::parse(text, &perr);
  if (!doc) {
    set_error(error, "malformed submission: " + perr);
    return std::nullopt;
  }
  return configs_from_array(*doc, error);
}

std::optional<Submission> submission_from_json_text(std::string_view text,
                                                    std::string* error) {
  std::string perr;
  const auto doc = report::json::parse(text, &perr);
  if (!doc) {
    set_error(error, "malformed submission: " + perr);
    return std::nullopt;
  }
  Submission sub;
  if (doc->is_array()) {
    auto cfgs = configs_from_array(*doc, error);
    if (!cfgs) return std::nullopt;
    sub.configs = std::move(*cfgs);
    return sub;
  }
  if (!doc->is_object()) {
    set_error(error, "submission must be a JSON array or wrapper object");
    return std::nullopt;
  }
  const Value* configs = nullptr;
  for (const auto& [key, v] : doc->members) {
    if (key == "trace_id") {
      if (!v.is_string()) {
        set_error(error, "submission \"trace_id\" must be a string");
        return std::nullopt;
      }
      sub.trace_id = v.str;
    } else if (key == "configs") {
      configs = &v;
    } else {
      // Same strictness as config fields: an unknown wrapper key is a
      // protocol mismatch, not something to silently drop.
      set_error(error, "unknown submission field \"" + key + "\"");
      return std::nullopt;
    }
  }
  if (configs == nullptr) {
    set_error(error, "submission wrapper is missing \"configs\"");
    return std::nullopt;
  }
  auto cfgs = configs_from_array(*configs, error);
  if (!cfgs) return std::nullopt;
  sub.configs = std::move(*cfgs);
  return sub;
}

}  // namespace ffet::serve
