// synth.h — virtual synthesis: target-frequency gate sizing and buffering.
//
// The paper sweeps the *synthesis target frequency* (500 MHz – 3 GHz) and
// reports the post-P&R achieved frequency and power.  We reproduce the
// mechanism with a sizing loop over the mapped netlist:
//
//   1. high-fanout nets are buffered down to `max_fanout`;
//   2. wireload-model STA finds the critical path; every cell on it is
//      upsized one drive step (D1→D2→D4→D8) when a bigger drive exists;
//   3. repeat until the target period is met or no further move helps.
//
// Tighter targets therefore yield larger/faster/hungrier netlists — the
// effect that makes the paper's power-frequency curves slope upward.

#pragma once

#include <unordered_map>

#include "netlist/netlist.h"

namespace ffet::synth {

struct SynthOptions {
  double target_freq_ghz = 1.5;
  int max_passes = 16;
  int max_fanout = 12;
};

struct SynthReport {
  double est_freq_ghz = 0.0;  ///< wireload-model estimate after sizing
  bool met = false;
  int upsized = 0;
  int buffers_added = 0;
  int passes = 0;
};

/// Size `nl` in place for the target frequency.  The library must be
/// characterized.
SynthReport size_for_frequency(netlist::Netlist& nl,
                               const SynthOptions& options = {});

}  // namespace ffet::synth

namespace ffet::synth {

/// Placement-aware repeater insertion: nets with sinks farther than
/// `max_hpwl_um` from their driver get a repeater (BUFD4) at the midpoint
/// toward the far-sink centroid, splitting the RC line.  Single-level and
/// deliberately simple; NOT part of the default flow (on this block it
/// trades pin budget and wirelength for little delay), exposed for
/// experiments on larger dies where long thin-metal lines dominate.
int buffer_long_nets(netlist::Netlist& nl, double max_hpwl_um = 12.0);

/// Post-CTS hold fixing: insert delay buffers in front of flip-flop D pins
/// whose min-delay paths violate hold under the clock-tree latencies
/// (classic useful-skew repair).  Uses a conservative (derated, zero-wire)
/// min-delay model plus `margin_ps` of padding so the post-route check
/// stays clean.  Returns the number of buffers inserted.
int fix_hold(netlist::Netlist& nl,
             const std::unordered_map<netlist::InstId, double>&
                 clock_latency_ps,
             double margin_ps = 4.0);

}  // namespace ffet::synth
