#include "synth/synth.h"

#include <string>
#include <vector>

#include "geom/geom.h"
#include "sta/sta.h"
#include "stdcell/nldm.h"

namespace ffet::synth {

using netlist::InstId;
using netlist::NetId;
using netlist::Netlist;

namespace {

/// Next drive step of a cell, or nullptr at the top of the ladder.
const stdcell::CellType* next_drive(const stdcell::Library& lib,
                                    const stdcell::CellType& type) {
  const int d = type.structure().drive;
  const std::string base(stdcell::to_string(type.function()));
  for (int nd : {d * 2, d * 4}) {
    const stdcell::CellType* up = lib.find(base + "D" + std::to_string(nd));
    if (up) return up;
  }
  return nullptr;
}

/// Split sinks of high-fanout data nets behind buffer trees.
int buffer_high_fanout(Netlist& nl, int max_fanout, int& name_counter) {
  int added = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const int n_nets = nl.num_nets();  // snapshot: we add nets inside
    for (NetId n = 0; n < n_nets; ++n) {
      const netlist::Net& net = nl.net(n);
      if (net.is_clock) continue;  // CTS owns the clock
      if (net.driver.inst == netlist::kNoInst) continue;
      if (static_cast<int>(net.sinks.size()) <= max_fanout) continue;

      // Move sinks in groups of max_fanout behind BUFD4s.
      std::vector<netlist::PinRef> sinks = net.sinks;
      std::size_t idx = 0;
      while (static_cast<int>(sinks.size() - idx) > max_fanout) {
        const NetId leaf =
            nl.add_net("fobuf_net_" + std::to_string(name_counter));
        const InstId buf = nl.add_instance(
            "fobuf_" + std::to_string(name_counter), "BUFD4");
        ++name_counter;
        nl.connect(buf, "Z", leaf);
        for (int k = 0; k < max_fanout && idx < sinks.size(); ++k, ++idx) {
          const netlist::PinRef& ref = sinks[idx];
          const auto& pin_name =
              nl.instance(ref.inst)
                  .type->pins()[static_cast<std::size_t>(ref.pin)]
                  .name;
          nl.reconnect_sink(ref.inst, pin_name, leaf);
        }
        nl.connect(buf, "I", n);
        ++added;
        changed = true;
      }
    }
  }
  return added;
}

}  // namespace

SynthReport size_for_frequency(Netlist& nl, const SynthOptions& options) {
  SynthReport rep;
  int name_counter = 0;
  rep.buffers_added = buffer_high_fanout(nl, options.max_fanout, name_counter);

  const double target_ps = 1000.0 / options.target_freq_ghz;
  const stdcell::Library& lib = nl.library();

  for (int pass = 0; pass < options.max_passes; ++pass) {
    rep.passes = pass + 1;
    sta::Sta sta(&nl, nullptr);  // wireload model
    const sta::TimingReport t = sta.analyze_timing();
    rep.est_freq_ghz = t.achieved_freq_ghz;
    if (t.critical_path_ps <= target_ps) {
      rep.met = true;
      return rep;
    }
    int changed = 0;
    for (InstId id : sta.critical_instances()) {
      const netlist::Instance& inst = nl.instance(id);
      if (inst.type->physical_only() || inst.fixed) continue;
      const stdcell::CellType* up = next_drive(lib, *inst.type);
      if (!up) continue;
      nl.resize_instance(id, up);
      ++changed;
    }
    rep.upsized += changed;
    if (changed == 0) break;  // ladder exhausted on the critical path
  }
  sta::Sta sta(&nl, nullptr);
  rep.est_freq_ghz = sta.analyze_timing().achieved_freq_ghz;
  rep.met = 1000.0 / rep.est_freq_ghz <= target_ps;
  return rep;
}

}  // namespace ffet::synth

namespace ffet::synth {

int buffer_long_nets(netlist::Netlist& nl, double max_hpwl_um) {
  const stdcell::Library& lib = nl.library();
  const stdcell::CellType& buf = lib.at("BUFD4");
  const geom::Nm max_span = geom::from_um(max_hpwl_um);
  int inserted = 0;
  int serial = 0;

  const int n_nets = nl.num_nets();  // snapshot: we add nets below
  for (netlist::NetId n = 0; n < n_nets; ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.is_clock) continue;
    if (net.driver.inst == netlist::kNoInst) continue;
    if (net.sinks.empty()) continue;

    const geom::Point drv = nl.pin_position(net.driver);
    // Far sinks: beyond half the budget from the driver.
    std::vector<netlist::PinRef> far;
    double cx = 0, cy = 0;
    for (const netlist::PinRef& s : net.sinks) {
      const geom::Point p = nl.pin_position(s);
      if (geom::manhattan(drv, p) > max_span) {
        far.push_back(s);
        cx += static_cast<double>(p.x);
        cy += static_cast<double>(p.y);
      }
    }
    if (far.empty()) continue;
    // Keep the output port (if any) on the original net; move far cell
    // sinks behind a repeater placed at their centroid's midpoint toward
    // the driver (splits the line roughly in half).
    const geom::Point centroid{
        static_cast<geom::Nm>(cx / static_cast<double>(far.size())),
        static_cast<geom::Nm>(cy / static_cast<double>(far.size()))};
    const geom::Point mid{(drv.x + centroid.x) / 2, (drv.y + centroid.y) / 2};

    const netlist::NetId leaf =
        nl.add_net("rep_net_" + std::to_string(serial));
    const netlist::InstId b =
        nl.add_instance("rep_buf_" + std::to_string(serial), &buf);
    ++serial;
    nl.instance(b).pos = mid;
    nl.connect(b, "Z", leaf);
    for (const netlist::PinRef& s : far) {
      const auto& pin_name =
          nl.instance(s.inst)
              .type->pins()[static_cast<std::size_t>(s.pin)]
              .name;
      nl.reconnect_sink(s.inst, pin_name, leaf);
    }
    nl.connect(b, "I", n);
    ++inserted;
  }
  return inserted;
}

int fix_hold(netlist::Netlist& nl,
             const std::unordered_map<netlist::InstId, double>&
                 clock_latency_ps,
             double margin_ps) {
  const stdcell::Library& lib = nl.library();
  const stdcell::CellType& buf = lib.at("BUFD1");
  // Delay of one hold buffer at a light load, min edge, derated early.
  const stdcell::TimingArc& arc = buf.timing_model()->arcs.front();
  const double buf_delay =
      0.9 * std::min(arc.delay_rise.lookup(10.0, 1.5),
                     arc.delay_fall.lookup(10.0, 1.5));

  int inserted = 0;
  int serial = 0;
  for (int pass = 0; pass < 4; ++pass) {
    sta::StaOptions so;
    so.derate_early = 0.85;  // conservative min-delay view
    double mean_lat = 0.0;
    if (!clock_latency_ps.empty()) {
      for (const auto& [id, lat] : clock_latency_ps) mean_lat += lat;
      mean_lat /= static_cast<double>(clock_latency_ps.size());
    }
    so.pi_reference_latency_ps = mean_lat;
    sta::Sta sta(&nl, nullptr, so);
    sta.analyze_timing(&clock_latency_ps);
    const sta::HoldReport rep = sta.analyze_hold(&clock_latency_ps);
    if (rep.violating_endpoints.empty()) break;
    for (const auto& [ff, slack] : rep.violating_endpoints) {
      const int need = std::max(
          1, static_cast<int>((margin_ps - slack) / buf_delay + 0.999));
      const geom::Point ff_pos = nl.instance(ff).pos;
      const int d_pin = nl.instance(ff).type->pin_index("D");
      netlist::NetId src = nl.pin_net(ff, static_cast<std::size_t>(d_pin));
      for (int k = 0; k < need; ++k) {
        const netlist::NetId mid =
            nl.add_net("hold_net_" + std::to_string(serial));
        const netlist::InstId b = nl.add_instance(
            "hold_buf_" + std::to_string(serial), &buf);
        ++serial;
        // Place the buffer at the flop (same idealization as CTS buffers).
        nl.instance(b).pos = ff_pos;
        nl.connect(b, "I", src);
        nl.connect(b, "Z", mid);
        src = mid;
        ++inserted;
      }
      nl.reconnect_sink(ff, "D", src);
    }
  }
  return inserted;
}

}  // namespace ffet::synth
