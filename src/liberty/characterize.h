// characterize.h — analytic switch-level library characterization.
//
// Replaces the paper's SPICE-based characterization of the virtual 5 nm PDK
// with a deterministic analytic model.  Every cell is treated as a chain of
// CMOS stages; each stage is an RC switch:
//
//   delay  = ln(2) * (R_drive + R_link) * (C_internal + C_next)
//            + slew-dependent input term,
//   trans  = (ln(9)) * (R_drive + R_link) * (C_internal + C_load),
//   energy = 1/2 * VDD^2 * C_internal  per output transition (load energy is
//            accounted at the net level by the power analyzer — see sta/).
//
// The technology-dependent parasitics enter exactly where the paper locates
// them (Sec. II.B):
//
//   * R_link / C_link of the n-p common-drain connection: a supervia chain
//     in CFET vs. the compact Drain Merge in FFET;
//   * gate-link capacitance (stacked-gate contact vs. Gate Merge via);
//   * intra-cell M0 track capacitance per CPP of cell width: larger in CFET
//     because part of the p-logic must detour to the frontside;
//   * the *dual-sided output pin*: the FFET output pin presents M0 landing
//     metal on BOTH sides, slightly increasing output-pin capacitance — the
//     reason Table I shows FFET inverters paying ~+0.3 % transition power
//     while multi-stage buffers (whose internal nodes carry no dual-sided
//     pin but enjoy the smaller intra-cell parasitics) save 3-12 %.
//
// Leakage depends only on transistor count and the shared intrinsic device,
// so the FFET-vs-CFET leakage delta is exactly 0 — Table I's middle row.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stdcell/nldm.h"
#include "stdcell/stdcell.h"

namespace ffet::liberty {

/// Characterization grid; defaults cover the operating range of the RV32
/// block (slews 2-160 ps, loads 0.4-40 fF).
struct CharacterizeOptions {
  std::vector<double> slew_axis_ps = {2, 5, 10, 20, 40, 80, 160};
  std::vector<double> load_axis_ff = {0.4, 1, 2, 4, 8, 16, 40};
};

/// Fill NLDM models and input-pin capacitances for every logic cell in the
/// library.  Idempotent: re-running replaces the models.
///
/// Results are memoized process-wide: characterization is a pure function of
/// (technology kind, pin configuration, characterization axes) — input-pin
/// *sides* never enter the electrical model (the paper assumes cell
/// characteristics are identical across input pin configurations), so every
/// library built for the same technology and axes shares one cache entry.
/// The cache is thread-safe; concurrent sweep points may characterize at
/// most once each and then reuse the stored tables.
void characterize_library(stdcell::Library& lib,
                          const CharacterizeOptions& opts = {});

/// Hit/miss counters of the process-wide characterization cache.
struct CharacterizeCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

CharacterizeCacheStats characterization_cache_stats();

/// Drop all cached characterizations and reset the stats (tests).
void clear_characterization_cache();

/// KPIs of one characterized cell at a nominal operating point (used for the
/// Table I comparison).
struct CellKpi {
  double transition_energy_fj = 0.0;  ///< rise + fall internal energy
  double leakage_nw = 0.0;
  double rise_delay_ps = 0.0;
  double fall_delay_ps = 0.0;
  double rise_trans_ps = 0.0;
  double fall_trans_ps = 0.0;
};

/// Measure a characterized cell's first input→output arc at (slew, load).
CellKpi measure_kpi(const stdcell::CellType& cell, double slew_ps,
                    double load_ff);

/// Percentage differences of an FFET cell w.r.t. the same-named CFET cell,
/// at a drive-proportional nominal operating point — the Table I rows.
struct KpiDiff {
  std::string cell;
  double transition_power_pct = 0.0;
  double leakage_power_pct = 0.0;
  double rise_timing_pct = 0.0;
  double fall_timing_pct = 0.0;
  double rise_transition_pct = 0.0;
  double fall_transition_pct = 0.0;
};

KpiDiff compare_cell(const stdcell::CellType& ffet_cell,
                     const stdcell::CellType& cfet_cell);

/// Compare every cell present in both libraries; order follows `ffet_lib`.
std::vector<KpiDiff> compare_libraries(const stdcell::Library& ffet_lib,
                                       const stdcell::Library& cfet_lib);

}  // namespace ffet::liberty
