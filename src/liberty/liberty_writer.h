// liberty_writer.h — emit the characterized library in Liberty (.lib)
// syntax.
//
// The paper's flow consumes characterized libraries as Liberty files; this
// writer produces a faithful NLDM subset (lu_table_template, cell, pin,
// timing and internal_power groups) so the project's libraries can be
// inspected with standard tooling or diffed across technologies.  Units:
// 1ns/1pf Liberty convention is NOT used — we emit ps/fF/fJ and declare
// them in the header, keeping numbers identical to the in-memory model.

#pragma once

#include <iosfwd>
#include <string>

#include "stdcell/stdcell.h"

namespace ffet::liberty {

/// Write the whole library; cells must be characterized.
void write_liberty(const stdcell::Library& lib, std::ostream& os);
std::string to_liberty_string(const stdcell::Library& lib);

}  // namespace ffet::liberty
