#include "liberty/characterize.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "tech/tech.h"

namespace ffet::liberty {

using stdcell::CellPin;
using stdcell::CellType;
using stdcell::Function;
using stdcell::Library;
using stdcell::NldmTable;
using stdcell::PinDir;
using stdcell::PinSide;
using stdcell::TimingArc;
using stdcell::TimingModel;
using tech::DeviceParams;
using tech::TechKind;
using tech::Technology;

namespace {

constexpr double kLn2 = 0.6931471805599453;
// Output transition: 10-90% swing of an RC node = ln(9) * RC.
constexpr double kLn9 = 2.1972245773362196;
// Fraction of the input transition that adds to stage delay (ramp-input
// correction of the step-response model).
constexpr double kSlewDelayFactor = 0.18;
// Short-circuit energy as a fraction of internal switched energy, scaled by
// input slew relative to output transition.
constexpr double kShortCircuitFactor = 0.08;
// Share of the n-p link resistance seen by the rising (pull-up) edge.  The
// falling edge discharges the far-side drain through the full link; the
// rising edge is partially bypassed by the near-side landing metal.  This
// asymmetry is what makes Table I's fall-timing advantages exceed the
// rise-timing ones.
constexpr double kRiseLinkShare = 0.55;

/// Electrical summary of one CMOS stage of a cell.
struct Stage {
  double drive = 1.0;       ///< width multiple of a unit (two-fin) pair
  double r_rise_ohm = 0.0;  ///< pull-up resistance incl. link share
  double r_fall_ohm = 0.0;  ///< pull-down resistance incl. link share
  double c_internal_ff = 0.0;  ///< parasitic cap switched at the stage output
  double c_next_ff = 0.0;      ///< gate cap of the following stage (0 = load)
};

/// Per-stage drive distribution: the final stage carries the cell's rated
/// drive; preceding stages taper at ratio ~2 (classic buffer sizing), never
/// below 1.
std::vector<double> stage_drives(int stages, int drive) {
  std::vector<double> d(static_cast<std::size_t>(stages));
  double cur = drive;
  for (int i = stages - 1; i >= 0; --i) {
    d[static_cast<std::size_t>(i)] = cur;
    cur = std::max(1.0, cur / 2.0);
  }
  return d;
}

/// Build the stage chain for a cell in a given technology.
std::vector<Stage> build_stages(const CellType& cell, const Technology& tech) {
  const DeviceParams& dev = tech.device();
  const auto& s = cell.structure();
  const int n = std::max(1, s.stages);
  const std::vector<double> drives = stage_drives(n, s.drive);

  const bool is_ffet = tech.kind() == TechKind::Ffet3p5T;
  const int width_cpp =
      is_ffet ? s.width_cpp_ffet : s.width_cpp_cfet;

  // Distribute the cell's structural parasitics across stages.  Links and
  // transistor pairs concentrate mildly toward the output stage (which is
  // the widest), modeled by weighting with stage drive.
  double drive_sum = 0.0;
  for (double d : drives) drive_sum += d;

  // Gate links: in FFET, split-gate pairs skip the Gate Merge entirely; in
  // CFET every pair needs the stacked-gate contact (split-gate pairs cost
  // area there, not skipped parasitics).
  const double gate_links =
      is_ffet ? std::max(0, s.gate_links - s.split_gate_pairs) : s.gate_links;

  std::vector<Stage> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Stage& st = out[static_cast<std::size_t>(i)];
    st.drive = drives[static_cast<std::size_t>(i)];
    const double share = st.drive / drive_sum;

    const double fins = s.fins_per_device * st.drive;
    const double r_n = dev.nfet_r_per_fin_ohm / fins;
    const double r_p = dev.pfet_r_per_fin_ohm / fins;
    // The n-p link of this stage: parallel links reduce its resistance only
    // as well as the technology's link structure parallelizes (supervia
    // chains are area-constrained; Drain Merges scale perfectly).
    const double links_here = std::max(1.0, s.np_links * share);
    const double link_r =
        dev.np_link_r_ohm /
        (1.0 + (links_here - 1.0) * dev.np_link_parallel_eff);
    st.r_rise_ohm = r_p + kRiseLinkShare * link_r;
    st.r_fall_ohm = r_n + link_r;

    // Internal cap at the stage output: drain junctions of this stage's
    // pair(s), its n-p link metal, its share of the intra-cell M0 tracks
    // and of the gate-link metal of downstream gates.
    double c = dev.drain_c_per_fin_ff * 2.0 * fins;  // n + p drains
    c += dev.np_link_c_ff * links_here;
    c += dev.internal_track_c_ff_per_cpp * width_cpp * share;
    c += dev.gate_link_c_ff * gate_links * share;
    if (i == n - 1) {
      // Output pin landing metal spans the cell width; dual-sided output
      // pins (FFET Drain Merge reaching FM0 *and* BM0) pay both sides.
      const CellPin* out_pin = cell.output_pin();
      const double sides = (out_pin && out_pin->side == PinSide::Both) ? 2.0
                                                                       : 1.0;
      c += dev.pin_c_ff_per_cpp_side * width_cpp * sides;
    }
    st.c_internal_ff = c;
    if (i + 1 < n) {
      const double next_fins = s.fins_per_device * drives[static_cast<std::size_t>(i) + 1];
      out[static_cast<std::size_t>(i)].c_next_ff =
          dev.gate_c_per_fin_ff * 2.0 * next_fins;
    }
  }
  return out;
}

/// Propagate one edge through the stage chain.
struct EdgeResult {
  double delay_ps = 0.0;
  double trans_ps = 0.0;
  double energy_fj = 0.0;  ///< internal energy of all switched stage nodes
};

/// `rising_out` refers to the edge at the cell OUTPUT; alternating stages
/// flip the edge backwards through the chain.
EdgeResult propagate(const std::vector<Stage>& stages, bool rising_out,
                     double input_slew_ps, double load_ff, double vdd) {
  EdgeResult r;
  double slew = input_slew_ps;
  const int n = static_cast<int>(stages.size());
  for (int i = 0; i < n; ++i) {
    const Stage& st = stages[static_cast<std::size_t>(i)];
    // Output edge of stage i: the final stage emits `rising_out`; each
    // earlier stage is inverted once per stage in between.
    const bool stage_rises = ((n - 1 - i) % 2 == 0) == rising_out;
    const double res = stage_rises ? st.r_rise_ohm : st.r_fall_ohm;
    const double cap = st.c_internal_ff + (i == n - 1 ? load_ff : st.c_next_ff);
    // ohm * fF = 1e-15 * 1e0 s = femtoseconds*1e3 -> R[ohm]*C[fF] yields fs;
    // divide by 1000 for ps.
    const double rc_ps = res * cap / 1000.0;
    r.delay_ps += kLn2 * rc_ps + kSlewDelayFactor * slew;
    slew = kLn9 * rc_ps;
    r.energy_fj += 0.5 * vdd * vdd * st.c_internal_ff;
  }
  r.trans_ps = slew;
  // Short-circuit contribution grows with the final input slew feeding the
  // last stage; approximated from the cell input slew.
  r.energy_fj *= 1.0 + kShortCircuitFactor * std::min(2.0, input_slew_ps /
                                                               std::max(1.0, r.trans_ps));
  return r;
}

NldmTable make_table(const CharacterizeOptions& opts,
                     const std::function<double(double, double)>& f) {
  std::vector<double> v;
  v.reserve(opts.slew_axis_ps.size() * opts.load_axis_ff.size());
  for (double s : opts.slew_axis_ps) {
    for (double l : opts.load_axis_ff) v.push_back(f(s, l));
  }
  return NldmTable(opts.slew_axis_ps, opts.load_axis_ff, std::move(v));
}

/// Number of transistor-pair gates one input pin drives, for pin-cap
/// computation: inputs share the stage-1 pairs; select/clock style pins
/// (later inputs of MUX/DFF) see buffered internal drivers instead, modeled
/// as one unit pair.
double pairs_driven_by_input(const CellType& cell) {
  const auto& s = cell.structure();
  const int n_inputs = std::max<std::size_t>(1, cell.input_pins().size());
  const double first_stage_pairs =
      std::max(1.0, stage_drives(std::max(1, s.stages), s.drive).front());
  // Multi-input single-stage gates: each input drives one series/parallel
  // pair per finger.
  if (s.stages <= 1) {
    return std::max(1.0, static_cast<double>(s.tx_pairs) / n_inputs);
  }
  return first_stage_pairs;
}

void characterize_cell(CellType& cell, const Technology& tech,
                       const CharacterizeOptions& opts) {
  if (cell.physical_only()) return;
  const DeviceParams& dev = tech.device();
  const auto& s = cell.structure();

  // Input-pin capacitance.
  const double pairs_in = pairs_driven_by_input(cell);
  const bool is_ffet = tech.kind() == TechKind::Ffet3p5T;
  for (CellPin& p : cell.mutable_pins()) {
    if (p.dir == PinDir::Output) continue;
    // An input drives the n and p gates of `pairs_in` pairs.  Split-gate
    // pins (complementary-clock pins) drive only one device per pair, but
    // the library abstracts this into the same pin model — consistent with
    // the paper's simplification that "characteristics of the same cell
    // remain the same across different input pin configurations".
    double c = dev.gate_c_per_fin_ff * s.fins_per_device * 2.0 * pairs_in;
    const double gate_links =
        is_ffet ? std::max(0, s.gate_links - s.split_gate_pairs)
                : s.gate_links;
    const int n_inputs =
        std::max<int>(1, static_cast<int>(cell.input_pins().size()));
    c += dev.gate_link_c_ff * gate_links / n_inputs;
    c += dev.pin_c_ff_per_cpp_side * 1.0;  // single-sided input landing metal
    p.cap_ff = c;
  }

  const std::vector<Stage> stages = build_stages(cell, tech);
  auto model = std::make_unique<TimingModel>();
  model->leakage_nw = dev.leakage_nw_per_fin * s.fins_per_device * 2.0 *
                      s.tx_pairs;

  const int out_idx = cell.pin_index(cell.output_pin()->name);
  for (const CellPin* in : cell.input_pins()) {
    // DFF: only the clock pin has an arc to Q (CP->Q); D has constraints.
    if (cell.sequential() && in->dir != PinDir::Clock) continue;
    TimingArc arc;
    arc.from_pin = cell.pin_index(in->name);
    arc.to_pin = out_idx;
    arc.delay_rise = make_table(opts, [&](double sl, double ld) {
      return propagate(stages, true, sl, ld, dev.vdd_v).delay_ps;
    });
    arc.delay_fall = make_table(opts, [&](double sl, double ld) {
      return propagate(stages, false, sl, ld, dev.vdd_v).delay_ps;
    });
    arc.trans_rise = make_table(opts, [&](double sl, double ld) {
      return propagate(stages, true, sl, ld, dev.vdd_v).trans_ps;
    });
    arc.trans_fall = make_table(opts, [&](double sl, double ld) {
      return propagate(stages, false, sl, ld, dev.vdd_v).trans_ps;
    });
    arc.energy_rise = make_table(opts, [&](double sl, double ld) {
      return propagate(stages, true, sl, ld, dev.vdd_v).energy_fj;
    });
    arc.energy_fall = make_table(opts, [&](double sl, double ld) {
      return propagate(stages, false, sl, ld, dev.vdd_v).energy_fj;
    });
    model->arcs.push_back(std::move(arc));
  }

  if (cell.sequential()) {
    // Setup: the D signal must traverse the master latch (~2 stages at unit
    // drive) before the clock edge; hold follows the same path shortened.
    const double unit_rc =
        (dev.nfet_r_per_fin_ohm / s.fins_per_device) *
        (dev.gate_c_per_fin_ff * 2.0 * s.fins_per_device +
         dev.np_link_c_ff) /
        1000.0;
    model->setup_ps = 2.0 * kLn2 * unit_rc * 4.0;
    model->hold_ps = 0.5 * kLn2 * unit_rc * 4.0;
  }

  cell.set_timing_model(std::move(model));
}

// --- process-wide characterization cache -----------------------------------
//
// Keyed on everything the electrical model reads: the technology kind (which
// selects the DeviceParams and the per-kind cell widths), the library's pin
// configuration, and the characterization axes.  Cell structures are fixed
// per cell name by build_library, so the name suffices inside an entry.

struct CachedCell {
  std::vector<double> pin_caps_ff;  ///< parallel to CellType::pins()
  TimingModel model;
};

struct CacheEntry {
  std::map<std::string, CachedCell, std::less<>> cells;
};

std::mutex g_cache_mutex;
std::map<std::string, std::shared_ptr<const CacheEntry>>& cache_map() {
  static std::map<std::string, std::shared_ptr<const CacheEntry>> m;
  return m;
}
CharacterizeCacheStats g_cache_stats;

std::string cache_key(const Library& lib, const CharacterizeOptions& opts) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << static_cast<int>(lib.tech().kind()) << '|'
     << lib.pin_config().backside_input_fraction << '|';
  for (double s : opts.slew_axis_ps) os << s << ',';
  os << '|';
  for (double l : opts.load_axis_ff) os << l << ',';
  return os.str();
}

}  // namespace

void characterize_library(Library& lib, const CharacterizeOptions& opts) {
  FFET_TRACE_SCOPE("liberty.characterize");
  if (opts.slew_axis_ps.size() < 2 || opts.load_axis_ff.size() < 2) {
    throw std::invalid_argument("characterization axes need >= 2 points");
  }

  const std::string key = cache_key(lib, opts);
  std::shared_ptr<const CacheEntry> hit;
  {
    std::lock_guard<std::mutex> lk(g_cache_mutex);
    auto it = cache_map().find(key);
    if (it != cache_map().end()) {
      hit = it->second;
      ++g_cache_stats.hits;
      FFET_METRIC_ADD("liberty.cache.hits", 1);
    } else {
      ++g_cache_stats.misses;
      FFET_METRIC_ADD("liberty.cache.misses", 1);
    }
  }

  if (hit) {
    for (const auto& cell : lib.cells()) {
      auto it = hit->cells.find(cell->name());
      if (it == hit->cells.end()) continue;  // physical-only cell
      const CachedCell& cc = it->second;
      auto& pins = cell->mutable_pins();
      for (std::size_t p = 0; p < pins.size() && p < cc.pin_caps_ff.size();
           ++p) {
        pins[p].cap_ff = cc.pin_caps_ff[p];
      }
      cell->set_timing_model(std::make_unique<TimingModel>(cc.model));
    }
    return;
  }

  for (const auto& cell : lib.cells()) {
    characterize_cell(*cell, lib.tech(), opts);
  }

  auto entry = std::make_shared<CacheEntry>();
  for (const auto& cell : lib.cells()) {
    if (cell->physical_only() || !cell->timing_model()) continue;
    CachedCell cc;
    cc.pin_caps_ff.reserve(cell->pins().size());
    for (const CellPin& p : cell->pins()) cc.pin_caps_ff.push_back(p.cap_ff);
    cc.model = *cell->timing_model();
    entry->cells.emplace(cell->name(), std::move(cc));
  }
  std::lock_guard<std::mutex> lk(g_cache_mutex);
  // First store wins if two threads characterized the same key concurrently;
  // both produced identical tables, so either entry is correct.
  cache_map().emplace(key, std::move(entry));
}

CharacterizeCacheStats characterization_cache_stats() {
  std::lock_guard<std::mutex> lk(g_cache_mutex);
  return g_cache_stats;
}

void clear_characterization_cache() {
  std::lock_guard<std::mutex> lk(g_cache_mutex);
  cache_map().clear();
  g_cache_stats = {};
}

CellKpi measure_kpi(const CellType& cell, double slew_ps, double load_ff) {
  const TimingModel* m = cell.timing_model();
  if (!m || m->arcs.empty()) {
    throw std::logic_error("cell " + cell.name() + " is not characterized");
  }
  const TimingArc& a = m->arcs.front();
  CellKpi k;
  k.rise_delay_ps = a.delay_rise.lookup(slew_ps, load_ff);
  k.fall_delay_ps = a.delay_fall.lookup(slew_ps, load_ff);
  k.rise_trans_ps = a.trans_rise.lookup(slew_ps, load_ff);
  k.fall_trans_ps = a.trans_fall.lookup(slew_ps, load_ff);
  k.transition_energy_fj = a.energy_rise.lookup(slew_ps, load_ff) +
                           a.energy_fall.lookup(slew_ps, load_ff);
  k.leakage_nw = m->leakage_nw;
  return k;
}

KpiDiff compare_cell(const CellType& ffet_cell, const CellType& cfet_cell) {
  // Drive-proportional operating point: FO4-style load of 4 unit input
  // caps per drive unit, nominal 15 ps input slew.
  const double load_ff = 4.0 * 1.0 * ffet_cell.structure().drive;
  const double slew_ps = 15.0;
  const CellKpi f = measure_kpi(ffet_cell, slew_ps, load_ff);
  const CellKpi c = measure_kpi(cfet_cell, slew_ps, load_ff);
  auto pct = [](double a, double b) {
    return b == 0.0 ? 0.0 : (a - b) / b * 100.0;
  };
  KpiDiff d;
  d.cell = ffet_cell.name();
  d.transition_power_pct = pct(f.transition_energy_fj, c.transition_energy_fj);
  d.leakage_power_pct = pct(f.leakage_nw, c.leakage_nw);
  d.rise_timing_pct = pct(f.rise_delay_ps, c.rise_delay_ps);
  d.fall_timing_pct = pct(f.fall_delay_ps, c.fall_delay_ps);
  d.rise_transition_pct = pct(f.rise_trans_ps, c.rise_trans_ps);
  d.fall_transition_pct = pct(f.fall_trans_ps, c.fall_trans_ps);
  return d;
}

std::vector<KpiDiff> compare_libraries(const Library& ffet_lib,
                                       const Library& cfet_lib) {
  std::vector<KpiDiff> out;
  for (const auto& cell : ffet_lib.cells()) {
    if (cell->physical_only() || !cell->timing_model() ||
        cell->timing_model()->arcs.empty()) {
      continue;  // physical or tie cells have no measurable arcs
    }
    const CellType* other = cfet_lib.find(cell->name());
    if (!other || !other->timing_model() ||
        other->timing_model()->arcs.empty()) {
      continue;
    }
    out.push_back(compare_cell(*cell, *other));
  }
  return out;
}

}  // namespace ffet::liberty
