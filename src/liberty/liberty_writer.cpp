#include "liberty/liberty_writer.h"

#include <ostream>
#include <sstream>

#include "stdcell/nldm.h"

namespace ffet::liberty {

namespace {

void write_axis(std::ostream& os, const char* key,
                const std::vector<double>& axis, const char* indent) {
  os << indent << key << " (\"";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (i) os << ", ";
    os << axis[i];
  }
  os << "\");\n";
}

void write_table(std::ostream& os, const char* group,
                 const stdcell::NldmTable& t, const char* indent) {
  if (t.empty()) return;
  os << indent << group << " (ffet_template) {\n";
  std::string in(indent);
  write_axis(os, "index_1", t.slew_axis(), (in + "  ").c_str());
  write_axis(os, "index_2", t.load_axis(), (in + "  ").c_str());
  os << in << "  values ( \\\n";
  for (std::size_t s = 0; s < t.slew_axis().size(); ++s) {
    os << in << "    \"";
    for (std::size_t l = 0; l < t.load_axis().size(); ++l) {
      if (l) os << ", ";
      os << t.at(s, l);
    }
    os << "\"" << (s + 1 < t.slew_axis().size() ? ", \\" : " \\") << "\n";
  }
  os << in << "  );\n" << in << "}\n";
}

}  // namespace

void write_liberty(const stdcell::Library& lib, std::ostream& os) {
  const auto& tech = lib.tech();
  std::string libname = tech.name();
  os << "library (" << libname << ") {\n";
  os << "  comment : \"OpenFFET characterized library — "
     << lib.name() << "\";\n";
  os << "  time_unit : \"1ps\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << "  leakage_power_unit : \"1nW\";\n";
  os << "  voltage_unit : \"1V\";\n";
  os << "  nom_voltage : " << tech.device().vdd_v << ";\n";
  os << "  default_max_transition : 200;\n\n";
  os << "  lu_table_template (ffet_template) {\n";
  os << "    variable_1 : input_net_transition;\n";
  os << "    variable_2 : total_output_net_capacitance;\n";
  os << "  }\n\n";

  for (const auto& cell : lib.cells()) {
    if (cell->physical_only()) {
      os << "  cell (" << cell->name() << ") {\n";
      os << "    area : " << cell->area_um2() << ";\n";
      os << "    dont_touch : true;\n    dont_use : true;\n  }\n\n";
      continue;
    }
    const stdcell::TimingModel* model = cell->timing_model();
    os << "  cell (" << cell->name() << ") {\n";
    os << "    area : " << cell->area_um2() << ";\n";
    if (model) {
      os << "    cell_leakage_power : " << model->leakage_nw << ";\n";
    }
    if (cell->sequential()) os << "    ff (IQ, IQN) { }\n";

    for (std::size_t pi = 0; pi < cell->pins().size(); ++pi) {
      const stdcell::CellPin& pin = cell->pins()[pi];
      os << "    pin (" << pin.name << ") {\n";
      os << "      direction : "
         << (pin.dir == stdcell::PinDir::Output ? "output" : "input")
         << ";\n";
      if (pin.dir != stdcell::PinDir::Output) {
        os << "      capacitance : " << pin.cap_ff << ";\n";
      }
      if (pin.dir == stdcell::PinDir::Clock) {
        os << "      clock : true;\n";
      }
      // Non-standard attribute carrying the dual-sided pin information the
      // paper's modified LEF encodes (front/back/both).
      os << "      ffet_pin_side : \"" << stdcell::to_string(pin.side)
         << "\";\n";

      if (pin.dir == stdcell::PinDir::Output && model) {
        for (const stdcell::TimingArc& arc : model->arcs) {
          if (arc.to_pin != static_cast<int>(pi)) continue;
          const stdcell::CellPin& from =
              cell->pins()[static_cast<std::size_t>(arc.from_pin)];
          os << "      timing () {\n";
          os << "        related_pin : \"" << from.name << "\";\n";
          if (cell->sequential()) {
            os << "        timing_type : rising_edge;\n";
          }
          write_table(os, "cell_rise", arc.delay_rise, "        ");
          write_table(os, "cell_fall", arc.delay_fall, "        ");
          write_table(os, "rise_transition", arc.trans_rise, "        ");
          write_table(os, "fall_transition", arc.trans_fall, "        ");
          os << "      }\n";
          os << "      internal_power () {\n";
          os << "        related_pin : \"" << from.name << "\";\n";
          write_table(os, "rise_power", arc.energy_rise, "        ");
          write_table(os, "fall_power", arc.energy_fall, "        ");
          os << "      }\n";
        }
      }
      if (cell->sequential() && pin.name == "D" && model) {
        os << "      timing () {\n";
        os << "        related_pin : \"CP\";\n";
        os << "        timing_type : setup_rising;\n";
        os << "        // setup: " << model->setup_ps << " ps, hold: "
           << model->hold_ps << " ps\n";
        os << "      }\n";
      }
      os << "    }\n";
    }
    os << "  }\n\n";
  }
  os << "}\n";
}

std::string to_liberty_string(const stdcell::Library& lib) {
  std::ostringstream os;
  write_liberty(lib, os);
  return os.str();
}

}  // namespace ffet::liberty
