// obs.h — umbrella header of the instrumentation layer.
//
// src/obs is a leaf library (standard library only) providing:
//
//   * trace.h    — RAII span tracer, Chrome trace-event JSON dumps
//   * metrics.h  — counters / gauges / log-bucket histograms
//   * resource.h — process resource probe (RSS / page-fault sampling)
//   * numfmt.h   — deterministic (to_chars) number formatting for sinks
//
// Tracing and metrics are compiled in but disabled by default; call sites
// branch on one relaxed atomic flag, so the disabled cost is a few
// nanoseconds per site.  The resource probe is the one *enabled-by-default*
// instrument (reports are expected to carry peak RSS); FFET_RESOURCE=0
// turns it into a zero-syscall no-op.  Environment control:
//
//   FFET_TRACE=<path>  enable tracing; dump the trace to <path> at exit
//   FFET_METRICS=1     enable metrics (a value naming a file additionally
//                      dumps the registry as JSON there at exit)
//   FFET_RESOURCE=0    disable the resource probe (no syscalls, no
//                      resource fields in any report)
//   FFET_VERBOSE=1     per-pass router convergence / per-stage timing+RSS
//                      one-liners
//
// The environment is read lazily on the first tracing_enabled() /
// metrics_enabled() query; explicit set_tracing()/set_metrics() calls made
// before that take precedence over the environment default.

#pragma once

#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace ffet::obs {

/// Read FFET_TRACE / FFET_METRICS once and settle both enable flags.
/// Idempotent and thread-safe; called automatically on the first
/// tracing_enabled()/metrics_enabled() query.
void init_from_env();

/// FFET_VERBOSE: human-oriented per-stage convergence logging (cached).
bool verbose();

/// CPU time consumed by the calling thread, in milliseconds (0 where
/// unsupported).  Stage timings report this next to wall time so
/// parallel-stage speedups and lock waits are visible.
double thread_cpu_ms();

/// Append `line` + '\n' to the JSONL file at `path` so that the record
/// stays whole even when *multiple processes* append concurrently: the file
/// is opened with O_APPEND and the whole record (newline included) goes out
/// in a single write(2), which POSIX makes atomic with respect to other
/// O_APPEND writers for regular files.  Creates one parent directory level
/// on first use.  This is the one writer behind every append-only sink
/// (flow report, run ledger, serve cache journal) — a worker fleet of
/// forked processes shares those files.  Returns false (and sets `error`
/// when non-null) on open/short-write failure; never throws.
bool append_jsonl_line(const std::string& path, std::string_view line,
                       std::string* error = nullptr);

namespace detail {
void init_tracing_from_env();  // trace.cpp
void init_metrics_from_env();  // metrics.cpp
}  // namespace detail

}  // namespace ffet::obs
