#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/numfmt.h"
#include "obs/obs.h"

namespace ffet::obs {

namespace {

/// 0 = uninitialized (read the environment on first query), 1 = off, 2 = on.
std::atomic<int> g_metrics_state{0};

struct MetricsRegistry {
  std::mutex m;
  // Instruments are heap-allocated and never freed: references handed to
  // call sites and the at-exit dump must outlive static destruction.
  std::map<std::string, Counter*, std::less<>> counters;
  std::map<std::string, Gauge*, std::less<>> gauges;
  std::map<std::string, Histogram*, std::less<>> histograms;
};

MetricsRegistry& registry() {
  static auto* r = new MetricsRegistry;
  return *r;
}

template <class T, class Map>
T& lookup(Map& map, std::mutex& m, std::string_view name) {
  std::lock_guard<std::mutex> lk(m);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), new T).first;
  }
  return *it->second;
}

std::string& exit_dump_path() {
  static auto* p = new std::string;
  return *p;
}

}  // namespace

bool metrics_enabled() {
  int s = g_metrics_state.load(std::memory_order_relaxed);
  if (s == 0) {
    init_from_env();
    s = g_metrics_state.load(std::memory_order_relaxed);
  }
  return s == 2;
}

void set_metrics(bool on) {
  g_metrics_state.store(on ? 2 : 1, std::memory_order_relaxed);
}

namespace detail {

void init_metrics_from_env() {
  const char* p = std::getenv("FFET_METRICS");
  if (p != nullptr && *p != '\0' && std::string_view(p) != "0") {
    set_metrics(true);
    // Any value that isn't just an on/off switch names a dump file.
    if (std::string_view(p) != "1") dump_metrics_at_exit(p);
  } else {
    int expected = 0;
    g_metrics_state.compare_exchange_strong(expected, 1,
                                            std::memory_order_relaxed);
  }
}

}  // namespace detail

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;                       // zero, negatives, nan
  if (std::isinf(v)) return kBuckets - 1;
  const int e = std::ilogb(v);                    // floor(log2(v))
  return std::clamp(e + 9, 0, kBuckets - 1);
}

double Histogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0.0;
  return std::ldexp(1.0, i - 9);  // 2^(i-9)
}

void Histogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistSnapshot Histogram::snapshot() const {
  HistSnapshot s;
  s.count = count();
  s.sum = sum();
  s.min = s.count == 0 ? 0.0 : min();
  s.max = s.count == 0 ? 0.0 : max();
  s.buckets.resize(kBuckets);
  for (int i = 0; i < kBuckets; ++i) s.buckets[i] = bucket(i);
  return s;
}

double HistSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [0, count]; walk the cumulative bucket counts to the
  // bucket containing it, then interpolate linearly inside the bucket.
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  const int n = static_cast<int>(buckets.size());
  for (int i = 0; i < n; ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      const double lo = Histogram::bucket_lower_bound(i);
      // The top bucket is open-ended; cap it at the observed max.
      const double hi =
          i + 1 < Histogram::kBuckets ? Histogram::bucket_lower_bound(i + 1)
                                      : max;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      const double v = lo + frac * (hi > lo ? hi - lo : 0.0);
      return std::clamp(v, min, max);
    }
    cum += c;
  }
  return max;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  MetricsRegistry& r = registry();
  return lookup<Counter>(r.counters, r.m, name);
}

Gauge& gauge(std::string_view name) {
  MetricsRegistry& r = registry();
  return lookup<Gauge>(r.gauges, r.m, name);
}

Histogram& histogram(std::string_view name) {
  MetricsRegistry& r = registry();
  return lookup<Histogram>(r.histograms, r.m, name);
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snap;
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& [name, c] : r.counters) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : r.histograms) {
    MetricsSnapshot::Hist hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = hs.count ? h->min() : 0.0;
    hs.max = hs.count ? h->max() : 0.0;
    hs.buckets.reserve(Histogram::kBuckets);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      hs.buckets.push_back(h->bucket(i));
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void reset_metrics() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& [name, c] : r.counters) c->reset();
  for (const auto& [name, g] : r.gauges) g->reset();
  for (const auto& [name, h] : r.histograms) h->reset();
}

std::string metrics_to_json() {
  const MetricsSnapshot snap = metrics_snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    append_double(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, h.name);
    out += "\":{\"count\":" + std::to_string(h.count) + ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"min\":";
    append_double(out, h.min);
    out += ",\"max\":";
    append_double(out, h.max);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

void dump_metrics_at_exit(std::string path) {
  static std::once_flag once;
  std::call_once(once, [&path] {
    exit_dump_path() = std::move(path);
    std::atexit([] {
      if (exit_dump_path().empty()) return;
      const std::string json = metrics_to_json();
      if (std::FILE* f = std::fopen(exit_dump_path().c_str(), "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      }
    });
  });
}

}  // namespace ffet::obs
