// metrics.h — a lock-cheap process-wide metrics registry.
//
// Three instrument kinds, all safe for concurrent recording:
//
//   * Counter   — monotonically increasing uint64 (relaxed fetch_add).
//   * Gauge     — last-written double, plus a CAS running maximum.
//   * Histogram — fixed base-2 log buckets with exact count/sum/min/max.
//
// Instruments are created on first use (`obs::counter("route.ripups")`) and
// live for the whole process, so call sites may cache the reference.  The
// registry mutex is only taken on lookup — recording is pure atomics.
//
// Disabled by default: recording sites guard on `metrics_enabled()` (one
// relaxed atomic load).  Enable with `obs::set_metrics(true)` or
// `FFET_METRICS=1`; an FFET_METRICS value that names a file (anything other
// than 0/1) additionally dumps the registry as JSON there at process exit.
//
// Instrument families by prefix (the registry itself is name-agnostic):
//
//   flow.*      per-point stage timings and sweep counters (src/flow)
//   route.*     router convergence counters (src/pnr)
//   pool.*      thread-pool queue depth / steals (src/runtime)
//   resource.*  RSS / fault gauges (obs/resource via src/flow)
//   serve.*     sweep-service daemon (src/serve): requests, points,
//               cache_hits, cache_misses, single_flight_joins, flow_runs,
//               worker_restarts, worker_deaths, retries; gauge queue_depth.

#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace ffet::obs {

/// Is metrics recording on?  One relaxed atomic load; the first call reads
/// the environment (see obs.h) to pick the default.
bool metrics_enabled();
void set_metrics(bool on);

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Keep the running maximum (CAS loop; used for e.g. queue depths).
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// One-moment copy of a Histogram's state, with quantile estimation over
/// the log buckets (linear interpolation inside a bucket, clamped to the
/// observed [min, max]).  Taken with Histogram::snapshot(); safe to read
/// and serialize while the source histogram keeps recording.
struct HistSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty
  std::vector<std::uint64_t> buckets;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Estimated value at quantile q in [0, 1]; 0 when empty.
  double quantile(double q) const;
};

/// Histogram over fixed base-2 log buckets.  Bucket i spans
/// [2^(i-9), 2^(i-8)) — i.e. bucket 9 is [1, 2); bucket 0 additionally
/// collects everything below 2^-8 (including zero and negatives), and the
/// top bucket everything from 2^22 up (including +inf).  With kBuckets = 32
/// the resolved range is [2^-9, 2^22) ≈ [0.002, 4.2e6) — wide enough for
/// values in ps, µm, ms, or plain counts.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  /// Bucket index for a value (clamped to [0, kBuckets-1]).
  static int bucket_index(double v);
  /// Inclusive lower edge of bucket i (0 for bucket 0).
  static double bucket_lower_bound(int i);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf while empty.
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  HistSnapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Find-or-create by name.  References stay valid for the process lifetime.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;  ///< 0 when empty
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Hist> histograms;
};

MetricsSnapshot metrics_snapshot();

/// Zero every registered instrument (entries stay registered).
void reset_metrics();

/// Deterministic JSON of the whole registry (sorted names, to_chars floats).
std::string metrics_to_json();

/// Write metrics_to_json() to `path` at process exit (first caller wins).
void dump_metrics_at_exit(std::string path);

/// Record-if-enabled conveniences.  The instrument reference is resolved
/// once (function-local static) and only when metrics are enabled.
#define FFET_METRIC_ADD(name_literal, n)                                  \
  do {                                                                    \
    if (::ffet::obs::metrics_enabled()) {                                 \
      static ::ffet::obs::Counter& ffet_metric_c =                        \
          ::ffet::obs::counter(name_literal);                             \
      ffet_metric_c.add(static_cast<std::uint64_t>(n));                   \
    }                                                                     \
  } while (0)

#define FFET_METRIC_GAUGE_SET(name_literal, v)                            \
  do {                                                                    \
    if (::ffet::obs::metrics_enabled()) {                                 \
      static ::ffet::obs::Gauge& ffet_metric_g =                          \
          ::ffet::obs::gauge(name_literal);                               \
      ffet_metric_g.set(static_cast<double>(v));                          \
    }                                                                     \
  } while (0)

#define FFET_METRIC_GAUGE_MAX(name_literal, v)                            \
  do {                                                                    \
    if (::ffet::obs::metrics_enabled()) {                                 \
      static ::ffet::obs::Gauge& ffet_metric_g =                          \
          ::ffet::obs::gauge(name_literal);                               \
      ffet_metric_g.set_max(static_cast<double>(v));                      \
    }                                                                     \
  } while (0)

#define FFET_METRIC_OBSERVE(name_literal, v)                              \
  do {                                                                    \
    if (::ffet::obs::metrics_enabled()) {                                 \
      static ::ffet::obs::Histogram& ffet_metric_h =                      \
          ::ffet::obs::histogram(name_literal);                           \
      ffet_metric_h.observe(static_cast<double>(v));                      \
    }                                                                     \
  } while (0)

}  // namespace ffet::obs
