// numfmt.h — deterministic number formatting for the telemetry sinks.
//
// Every JSON emitter in the repo (flow reports, trace files, metrics dumps)
// routes doubles through these helpers: std::to_chars produces the shortest
// round-trip representation, is locale-independent, and emits identical
// bytes for identical values — so two runs of the same deterministic flow
// diff cleanly.  Non-finite values serialize as `null` (JSON has no
// inf/nan literal).

#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace ffet::obs {

inline void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

inline std::string format_double(double v) {
  std::string s;
  append_double(s, v);
  return s;
}

/// JSON string-escape (quotes, backslashes, control characters).
inline void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace ffet::obs
