#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/numfmt.h"
#include "obs/obs.h"

namespace ffet::obs {

namespace {

/// 0 = uninitialized (read the environment on first query), 1 = off, 2 = on.
std::atomic<int> g_trace_state{0};

struct Event {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// One thread's lane.  The owner appends under `m`; snapshot/dump readers
/// copy under the same mutex, so recording may continue during a dump.
struct ThreadBuf {
  int tid = 0;
  std::mutex m;
  std::string name;
  std::vector<Event> events;
};

struct TraceRegistry {
  std::mutex m;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  int next_tid = 0;
};

// Leaked intentionally: the at-exit dump may run after static destructors.
TraceRegistry& registry() {
  static auto* r = new TraceRegistry;
  return *r;
}

ThreadBuf& local_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    b->tid = r.next_tid++;
    b->name = "thread." + std::to_string(b->tid);
    r.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

std::uint64_t steady_raw_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raw steady_clock ns of the trace epoch; 0 = not yet pinned.
std::atomic<std::uint64_t> g_epoch_raw_ns{0};

std::uint64_t trace_epoch() {
  std::uint64_t e = g_epoch_raw_ns.load(std::memory_order_relaxed);
  if (e == 0) {
    std::uint64_t now = steady_raw_ns();
    if (now == 0) now = 1;  // 0 means "unpinned"; never store it
    if (g_epoch_raw_ns.compare_exchange_strong(e, now,
                                               std::memory_order_relaxed)) {
      e = now;
    }
  }
  return e;
}

std::string& exit_dump_path() {
  static auto* p = new std::string;
  return *p;
}

/// Microseconds with fixed 3-decimal precision from integer nanoseconds —
/// pure integer formatting, byte-stable across runs for equal inputs.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

bool tracing_enabled() {
  int s = g_trace_state.load(std::memory_order_relaxed);
  if (s == 0) {
    init_from_env();
    s = g_trace_state.load(std::memory_order_relaxed);
  }
  return s == 2;
}

void set_tracing(bool on) {
  if (on) trace_epoch();  // pin the epoch no later than the first enable
  g_trace_state.store(on ? 2 : 1, std::memory_order_relaxed);
}

namespace detail {

void init_tracing_from_env() {
  const char* p = std::getenv("FFET_TRACE");
  if (p != nullptr && *p != '\0') {
    set_tracing(true);
    dump_trace_at_exit(p);
  } else {
    // Only settle to "off" if nobody called set_tracing() first.
    int expected = 0;
    g_trace_state.compare_exchange_strong(expected, 1,
                                          std::memory_order_relaxed);
  }
}

}  // namespace detail

void set_thread_name(std::string name) {
  ThreadBuf& b = local_buf();
  std::lock_guard<std::mutex> lk(b.m);
  b.name = std::move(name);
}

std::uint64_t trace_now_ns() {
  const std::uint64_t epoch = trace_epoch();
  const std::uint64_t now = steady_raw_ns();
  return now > epoch ? now - epoch : 0;
}

std::uint64_t trace_epoch_raw_ns() { return trace_epoch(); }

void set_trace_epoch_raw_ns(std::uint64_t raw_ns) {
  g_epoch_raw_ns.store(raw_ns == 0 ? 1 : raw_ns, std::memory_order_relaxed);
}

void record_span(std::string name, std::uint64_t start_ns,
                 std::uint64_t end_ns) {
  ThreadBuf& b = local_buf();
  std::lock_guard<std::mutex> lk(b.m);
  b.events.push_back(
      {std::move(name), start_ns, end_ns > start_ns ? end_ns - start_ns : 0});
}

void clear_trace() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (auto& b : r.bufs) {
    std::lock_guard<std::mutex> blk(b->m);
    b->events.clear();
  }
}

std::vector<TraceEventView> snapshot_trace() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    bufs = r.bufs;
  }
  std::vector<TraceEventView> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->m);
    for (const Event& e : b->events) {
      out.push_back({b->tid, b->name, e.name, e.start_ns, e.dur_ns});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEventView& a, const TraceEventView& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.name < b.name;
            });
  return out;
}

std::string trace_to_json() {
  const std::vector<TraceEventView> events = snapshot_trace();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  // Thread-name metadata for every lane that recorded something.
  int last_tid = -1;
  for (const TraceEventView& e : events) {
    if (e.tid == last_tid) continue;
    last_tid = e.tid;
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, e.thread);
    out += "\"}}";
  }
  for (const TraceEventView& e : events) {
    sep();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":";
    append_us(out, e.start_ns);
    out += ",\"dur\":";
    append_us(out, e.dur_ns);
    out += ",\"cat\":\"ffet\",\"name\":\"";
    append_escaped(out, e.name);
    out += "\"}";
  }
  out += "\n]}\n";
  return out;
}

bool dump_trace(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

void dump_trace_at_exit(std::string path) {
  static std::once_flag once;
  std::call_once(once, [&path] {
    exit_dump_path() = std::move(path);
    std::atexit([] {
      if (!exit_dump_path().empty()) dump_trace(exit_dump_path());
    });
  });
}

}  // namespace ffet::obs
