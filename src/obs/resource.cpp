#include "obs/resource.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define FFET_HAVE_RUSAGE 1
#endif

namespace ffet::obs {

namespace {

// -1 = undecided (read FFET_RESOURCE on first query), 0 = off, 1 = on.
std::atomic<int> g_resource_state{-1};

int resource_state() {
  int s = g_resource_state.load(std::memory_order_relaxed);
  if (s >= 0) return s;
  const char* e = std::getenv("FFET_RESOURCE");
  s = (e != nullptr && std::strcmp(e, "0") == 0) ? 0 : 1;
  // A racing set_resource() wins: only replace the undecided marker.
  int expected = -1;
  g_resource_state.compare_exchange_strong(expected, s,
                                           std::memory_order_relaxed);
  return g_resource_state.load(std::memory_order_relaxed);
}

/// Parse "<key>:   <n> kB" out of a /proc/self/status snapshot; -1 when
/// the key is absent (e.g. VmHWM on non-Linux /proc emulations).
long long status_field_kb(const char* text, const char* key) {
  const char* p = std::strstr(text, key);
  if (p == nullptr) return -1;
  p += std::strlen(key);
  while (*p == ':' || *p == ' ' || *p == '\t') ++p;
  long long v = 0;
  bool any = false;
  while (*p >= '0' && *p <= '9') {
    v = v * 10 + (*p - '0');
    ++p;
    any = true;
  }
  return any ? v : -1;
}

}  // namespace

bool resource_enabled() { return resource_state() == 1; }

void set_resource(bool on) {
  g_resource_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

ResourceSample sample_resources() {
  ResourceSample s;
  if (!resource_enabled()) return s;

  // /proc/self/status: VmHWM (peak RSS) and VmRSS, both in kB.  One read
  // of a small pseudo-file; the whole interesting region fits in 4 KiB.
  if (std::FILE* f = std::fopen("/proc/self/status", "rb")) {
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    const long long hwm = status_field_kb(buf, "VmHWM");
    const long long rss = status_field_kb(buf, "VmRSS");
    if (hwm > 0) s.peak_rss_kb = hwm;
    if (rss > 0) s.current_rss_kb = rss;
  }

#if defined(FFET_HAVE_RUSAGE)
  rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    s.minor_faults = static_cast<long long>(ru.ru_minflt);
    s.major_faults = static_cast<long long>(ru.ru_majflt);
    if (s.peak_rss_kb == 0 && ru.ru_maxrss > 0) {
      // Linux reports ru_maxrss in kB; this branch only runs where /proc
      // was unavailable, i.e. non-Linux, where BSD/macOS report bytes —
      // but macOS is the only common such platform, so convert from bytes
      // there and trust kB elsewhere.
#if defined(__APPLE__)
      s.peak_rss_kb = static_cast<long long>(ru.ru_maxrss) / 1024;
#else
      s.peak_rss_kb = static_cast<long long>(ru.ru_maxrss);
#endif
    }
  }
#endif
  if (s.current_rss_kb == 0) s.current_rss_kb = s.peak_rss_kb;
  return s;
}

long long sample_current_rss_kb() {
  if (!resource_enabled()) return 0;
  // /proc/self/statm: "size resident shared ..." in pages.  Cheaper than
  // status (no key scan) — this is the per-stage read.
  if (std::FILE* f = std::fopen("/proc/self/statm", "rb")) {
    long long size_pages = 0, resident_pages = 0;
    const int got = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
    std::fclose(f);
    if (got == 2) {
#if defined(FFET_HAVE_RUSAGE)
      static const long long kPageKb = [] {
        const long p = sysconf(_SC_PAGESIZE);
        return p > 0 ? static_cast<long long>(p) / 1024 : 4LL;
      }();
#else
      const long long kPageKb = 4;
#endif
      return resident_pages * kPageKb;
    }
  }
  // No /proc (non-Linux): fall back to the full sample's current RSS.
  return sample_resources().current_rss_kb;
}

}  // namespace ffet::obs
