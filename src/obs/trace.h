// trace.h — span tracing for the dual-sided P&R pipeline.
//
// Records RAII spans into per-thread buffers and serializes them as Chrome
// trace-event JSON ("X" complete events plus "M" thread-name metadata),
// loadable in chrome://tracing or https://ui.perfetto.dev.  Worker threads
// of the runtime ThreadPool register named lanes ("pool.worker.N"), so a
// traced sweep shows which stages ran where and how much parallelism was
// realized.
//
// Disabled by default with near-zero overhead: `FFET_TRACE_SCOPE(...)`
// compiles to one relaxed atomic flag check when tracing is off — no
// allocation, no clock read, no formatting.  Enable with
// `obs::set_tracing(true)` or the `FFET_TRACE=<path>` environment variable
// (which also dumps the trace to <path> at process exit).
//
// Serialization is deterministic for a given set of recorded events: events
// are sorted by (lane, start, duration, name) and numbers are formatted
// with std::to_chars, so dumping the same trace twice yields identical
// bytes.

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ffet::obs {

/// Is span recording on?  One relaxed atomic load; the first call reads the
/// FFET_TRACE / FFET_METRICS environment (see obs.h) to pick the default.
bool tracing_enabled();
void set_tracing(bool on);

/// Label the calling thread's lane in the trace (e.g. "main",
/// "pool.worker.3").  Retained across enable/disable and clear_trace().
void set_thread_name(std::string name);

/// Monotonic nanoseconds since the process trace epoch.
std::uint64_t trace_now_ns();

/// The trace epoch as raw steady_clock (CLOCK_MONOTONIC) nanoseconds —
/// pinned lazily on first use.  A parent process may pass this value to a
/// forked child, which calls set_trace_epoch_raw_ns() so spans recorded in
/// both processes share one timeline (steady_clock is machine-wide on
/// Linux).  Setting the epoch does not rebase spans already recorded.
std::uint64_t trace_epoch_raw_ns();
void set_trace_epoch_raw_ns(std::uint64_t raw_ns);

/// Append one complete span to the calling thread's lane.
void record_span(std::string name, std::uint64_t start_ns,
                 std::uint64_t end_ns);

/// Drop all recorded events (lane names and ids survive).
void clear_trace();

struct TraceEventView {
  int tid = 0;
  std::string thread;  ///< lane name
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// All recorded events in dump order: sorted by (tid, start, dur, name).
std::vector<TraceEventView> snapshot_trace();

/// Chrome trace-event JSON of everything recorded so far.
std::string trace_to_json();

/// Write trace_to_json() to `path`; returns false on I/O failure.
bool dump_trace(const std::string& path);

/// Dump the trace to `path` when the process exits (first caller wins).
void dump_trace_at_exit(std::string path);

/// RAII span: records [construction, destruction) on the calling thread's
/// lane.  The variadic form streams the extra parts onto the name — the
/// parts are only evaluated into a string when tracing is enabled.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (tracing_enabled()) begin(name);
  }
  explicit TraceScope(std::string name) {
    if (tracing_enabled()) begin(std::move(name));
  }
  template <class Part0, class... Parts>
  TraceScope(const char* name, Part0&& part0, Parts&&... parts) {
    if (!tracing_enabled()) return;
    std::ostringstream os;
    os << name << std::forward<Part0>(part0);
    static_cast<void>((os << ... << std::forward<Parts>(parts)));
    begin(os.str());
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (active_) record_span(std::move(name_), start_ns_, trace_now_ns());
  }

 private:
  void begin(std::string name) {
    name_ = std::move(name);
    start_ns_ = trace_now_ns();
    active_ = true;
  }

  std::string name_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

#define FFET_OBS_CONCAT2(a, b) a##b
#define FFET_OBS_CONCAT(a, b) FFET_OBS_CONCAT2(a, b)

/// Trace the enclosing scope: FFET_TRACE_SCOPE("route.pass.", pass).
#define FFET_TRACE_SCOPE(...)                                         \
  ::ffet::obs::TraceScope FFET_OBS_CONCAT(ffet_trace_scope_,          \
                                          __LINE__) {                 \
    __VA_ARGS__                                                       \
  }

}  // namespace ffet::obs
