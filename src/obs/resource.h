// resource.h — process resource probe (memory observability).
//
// Samples the process's resident-set footprint and page-fault counters so
// the flow can attribute memory to stages and the run ledger can trend
// peak RSS against design size:
//
//   * sample_resources()       — full sample: peak/current RSS from
//                                /proc/self/status (VmHWM/VmRSS), minor and
//                                major fault counts from getrusage(2);
//                                falls back to ru_maxrss where /proc is
//                                unavailable (non-Linux Unix).
//   * sample_current_rss_kb()  — fast current-RSS read from
//                                /proc/self/statm (one short read, no
//                                parsing beyond two integers); used per
//                                flow stage for rss_delta_kb accounting.
//
// Enabled **by default** (unlike tracing/metrics): every flow-report line
// and bench JSON is expected to carry peak_rss_kb on Linux, and the cost
// is a handful of short /proc reads per flow point.  FFET_RESOURCE=0 (or
// set_resource(false)) disables the probe entirely: call sites branch on
// one relaxed atomic load and make **zero syscalls** — reports then omit
// every resource field, byte-identical to a build without the probe.

#pragma once

namespace ffet::obs {

/// One process-wide resource sample.  All zeros when the probe is disabled
/// or the platform exposes none of the sources.
struct ResourceSample {
  long long peak_rss_kb = 0;     ///< high-water resident set (VmHWM)
  long long current_rss_kb = 0;  ///< current resident set (VmRSS)
  long long minor_faults = 0;    ///< ru_minflt (page reclaims, no I/O)
  long long major_faults = 0;    ///< ru_majflt (faults that hit storage)
};

/// Is the resource probe on?  One relaxed atomic load; the first call
/// reads FFET_RESOURCE ("0" disables; anything else, including unset,
/// leaves the probe on).
bool resource_enabled();
void set_resource(bool on);

/// Full sample (status + rusage).  Returns zeros without any syscall when
/// the probe is disabled.
ResourceSample sample_resources();

/// Current RSS only, from /proc/self/statm — the cheap per-stage read.
/// Returns 0 without any syscall when disabled, and 0 where unsupported.
long long sample_current_rss_kb();

}  // namespace ffet::obs
