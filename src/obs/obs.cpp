#include "obs/obs.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>
#include <time.h>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define FFET_OBS_HAVE_UNISTD 1
#endif

namespace ffet::obs {

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    detail::init_tracing_from_env();
    detail::init_metrics_from_env();
  });
}

bool verbose() {
  static const bool v = [] {
    const char* e = std::getenv("FFET_VERBOSE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
  }();
  return v;
}

bool append_jsonl_line(const std::string& path, std::string_view line,
                       std::string* error) {
  if (path.empty()) {
    if (error) *error = "empty sink path";
    return false;
  }
  // One contiguous record so the kernel-side O_APPEND write is all-or-
  // nothing relative to other appenders (processes included).
  std::string record;
  record.reserve(line.size() + 1);
  record.append(line);
  record += '\n';
#if defined(FFET_OBS_HAVE_UNISTD)
  if (const std::size_t slash = path.find_last_of('/');
      slash != std::string::npos && slash > 0) {
    ::mkdir(path.substr(0, slash).c_str(), 0777);  // best effort, one level
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
  if (fd < 0) {
    if (error) *error = "cannot open sink file: " + path;
    return false;
  }
  ssize_t n;
  do {
    n = ::write(fd, record.data(), record.size());
  } while (n < 0 && errno == EINTR);
  ::close(fd);
  const bool ok = n == static_cast<ssize_t>(record.size());
  if (!ok && error) *error = "short write to sink file: " + path;
  return ok;
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) {
    if (error) *error = "cannot open sink file: " + path;
    return false;
  }
  const bool ok =
      std::fwrite(record.data(), 1, record.size(), f) == record.size();
  std::fclose(f);
  if (!ok && error) *error = "short write to sink file: " + path;
  return ok;
#endif
}

double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return 0.0;
}

}  // namespace ffet::obs
