#include "obs/obs.h"

#include <cstdlib>
#include <mutex>
#include <string_view>
#include <time.h>

namespace ffet::obs {

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    detail::init_tracing_from_env();
    detail::init_metrics_from_env();
  });
}

bool verbose() {
  static const bool v = [] {
    const char* e = std::getenv("FFET_VERBOSE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
  }();
  return v;
}

double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return 0.0;
}

}  // namespace ffet::obs
