// harness.h — simulation harness around the generated RV32 core.
//
// Couples the gate-level Simulator with behavioural instruction/data
// memories (the memories are macros outside the standard-cell block, as in
// the paper's P&R evaluation).  Used by the ISA test suite, the example
// programs, and the power analyzer's activity extraction.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/sim.h"

namespace ffet::riscv {

class Rv32Harness {
 public:
  explicit Rv32Harness(const netlist::Netlist* core);

  /// Load a program at word-aligned byte address `base`.
  void load_program(const std::vector<std::uint32_t>& words,
                    std::uint32_t base = 0);

  /// Assert reset for one cycle and release it.
  void reset();

  /// Execute `n` instructions (single-cycle core: one instruction per
  /// cycle).  Memory requests are serviced combinationally.
  void step(int n = 1);

  std::uint32_t pc() const;
  /// Word-aligned data-memory access (test observation / preloading).
  std::uint32_t read_mem(std::uint32_t addr) const;
  void write_mem(std::uint32_t addr, std::uint32_t value);

  netlist::Simulator& sim() { return sim_; }
  const netlist::Simulator& sim() const { return sim_; }

 private:
  void service_memories();

  const netlist::Netlist* nl_;
  netlist::Simulator sim_;
  std::unordered_map<std::uint32_t, std::uint32_t> imem_;  ///< by word addr
  std::unordered_map<std::uint32_t, std::uint32_t> dmem_;
};

}  // namespace ffet::riscv
