// encode.h — RV32I instruction encoders.
//
// Tiny constexpr assembler used by tests, examples and the workload
// generator to produce instruction streams for the generated core without
// an external toolchain.  Field order follows the RISC-V unprivileged spec.

#pragma once

#include <cstdint>

namespace ffet::riscv::enc {

using u32 = std::uint32_t;

constexpr u32 r_type(u32 funct7, u32 rs2, u32 rs1, u32 funct3, u32 rd,
                     u32 opcode) {
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | opcode;
}

constexpr u32 i_type(std::int32_t imm, u32 rs1, u32 funct3, u32 rd,
                     u32 opcode) {
  return (static_cast<u32>(imm & 0xfff) << 20) | (rs1 << 15) |
         (funct3 << 12) | (rd << 7) | opcode;
}

constexpr u32 s_type(std::int32_t imm, u32 rs2, u32 rs1, u32 funct3,
                     u32 opcode) {
  const u32 u = static_cast<u32>(imm & 0xfff);
  return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
         ((u & 0x1f) << 7) | opcode;
}

constexpr u32 b_type(std::int32_t imm, u32 rs2, u32 rs1, u32 funct3,
                     u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) | (rs2 << 20) |
         (rs1 << 15) | (funct3 << 12) | (((u >> 1) & 0xf) << 8) |
         (((u >> 11) & 1) << 7) | opcode;
}

constexpr u32 u_type(std::int32_t imm_upper20, u32 rd, u32 opcode) {
  return (static_cast<u32>(imm_upper20 & 0xfffff) << 12) | (rd << 7) | opcode;
}

constexpr u32 j_type(std::int32_t imm, u32 rd, u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) | (rd << 7) |
         opcode;
}

// R-type ALU ops.
constexpr u32 add(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 0, rd, 0x33); }
constexpr u32 sub(u32 rd, u32 rs1, u32 rs2) { return r_type(0x20, rs2, rs1, 0, rd, 0x33); }
constexpr u32 sll(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 1, rd, 0x33); }
constexpr u32 slt(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 2, rd, 0x33); }
constexpr u32 sltu(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 3, rd, 0x33); }
constexpr u32 xor_(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 4, rd, 0x33); }
constexpr u32 srl(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 5, rd, 0x33); }
constexpr u32 sra(u32 rd, u32 rs1, u32 rs2) { return r_type(0x20, rs2, rs1, 5, rd, 0x33); }
constexpr u32 or_(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 6, rd, 0x33); }
constexpr u32 and_(u32 rd, u32 rs1, u32 rs2) { return r_type(0, rs2, rs1, 7, rd, 0x33); }

// I-type ALU ops.
constexpr u32 addi(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 0, rd, 0x13); }
constexpr u32 slti(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 2, rd, 0x13); }
constexpr u32 sltiu(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 3, rd, 0x13); }
constexpr u32 xori(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 4, rd, 0x13); }
constexpr u32 ori(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 6, rd, 0x13); }
constexpr u32 andi(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 7, rd, 0x13); }
constexpr u32 slli(u32 rd, u32 rs1, u32 sh) { return i_type(static_cast<std::int32_t>(sh), rs1, 1, rd, 0x13); }
constexpr u32 srli(u32 rd, u32 rs1, u32 sh) { return i_type(static_cast<std::int32_t>(sh), rs1, 5, rd, 0x13); }
constexpr u32 srai(u32 rd, u32 rs1, u32 sh) { return i_type(static_cast<std::int32_t>(sh | 0x400), rs1, 5, rd, 0x13); }

// Upper-immediate / jumps.
constexpr u32 lui(u32 rd, std::int32_t upper20) { return u_type(upper20, rd, 0x37); }
constexpr u32 auipc(u32 rd, std::int32_t upper20) { return u_type(upper20, rd, 0x17); }
constexpr u32 jal(u32 rd, std::int32_t offset) { return j_type(offset, rd, 0x6f); }
constexpr u32 jalr(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 0, rd, 0x67); }

// Branches (byte offsets).
constexpr u32 beq(u32 rs1, u32 rs2, std::int32_t off) { return b_type(off, rs2, rs1, 0, 0x63); }
constexpr u32 bne(u32 rs1, u32 rs2, std::int32_t off) { return b_type(off, rs2, rs1, 1, 0x63); }
constexpr u32 blt(u32 rs1, u32 rs2, std::int32_t off) { return b_type(off, rs2, rs1, 4, 0x63); }
constexpr u32 bge(u32 rs1, u32 rs2, std::int32_t off) { return b_type(off, rs2, rs1, 5, 0x63); }
constexpr u32 bltu(u32 rs1, u32 rs2, std::int32_t off) { return b_type(off, rs2, rs1, 6, 0x63); }
constexpr u32 bgeu(u32 rs1, u32 rs2, std::int32_t off) { return b_type(off, rs2, rs1, 7, 0x63); }

// Loads / stores.
constexpr u32 lb(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 0, rd, 0x03); }
constexpr u32 lh(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 1, rd, 0x03); }
constexpr u32 lw(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 2, rd, 0x03); }
constexpr u32 lbu(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 4, rd, 0x03); }
constexpr u32 lhu(u32 rd, u32 rs1, std::int32_t imm) { return i_type(imm, rs1, 5, rd, 0x03); }
constexpr u32 sb(u32 rs2, u32 rs1, std::int32_t imm) { return s_type(imm, rs2, rs1, 0, 0x23); }
constexpr u32 sh(u32 rs2, u32 rs1, std::int32_t imm) { return s_type(imm, rs2, rs1, 1, 0x23); }
constexpr u32 sw(u32 rs2, u32 rs1, std::int32_t imm) { return s_type(imm, rs2, rs1, 2, 0x23); }

// RV32M multiplies (funct7 = 0000001).
constexpr u32 mul(u32 rd, u32 rs1, u32 rs2) { return r_type(1, rs2, rs1, 0, rd, 0x33); }
constexpr u32 mulh(u32 rd, u32 rs1, u32 rs2) { return r_type(1, rs2, rs1, 1, rd, 0x33); }
constexpr u32 mulhsu(u32 rd, u32 rs1, u32 rs2) { return r_type(1, rs2, rs1, 2, rd, 0x33); }
constexpr u32 mulhu(u32 rd, u32 rs1, u32 rs2) { return r_type(1, rs2, rs1, 3, rd, 0x33); }

constexpr u32 nop() { return addi(0, 0, 0); }

}  // namespace ffet::riscv::enc
