#include "riscv/harness.h"

#include "riscv/encode.h"

namespace ffet::riscv {

Rv32Harness::Rv32Harness(const netlist::Netlist* core)
    : nl_(core), sim_(core) {
  sim_.set_input("clk", false);
  sim_.set_input("rst_n", true);
  sim_.set_bus("inst", 32, enc::nop());
  sim_.set_bus("dmem_rdata", 32, 0);
  sim_.evaluate();
}

void Rv32Harness::load_program(const std::vector<std::uint32_t>& words,
                               std::uint32_t base) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    imem_[base / 4 + static_cast<std::uint32_t>(i)] = words[i];
  }
}

void Rv32Harness::reset() {
  sim_.set_input("rst_n", false);
  sim_.tick();
  sim_.set_input("rst_n", true);
  service_memories();
}

void Rv32Harness::service_memories() {
  // Fetch: instruction at the current PC.
  const auto pc_word = static_cast<std::uint32_t>(sim_.read_bus("pc", 32)) / 4;
  const auto it = imem_.find(pc_word);
  sim_.set_bus("inst", 32, it == imem_.end() ? enc::nop() : it->second);
  sim_.evaluate();
  // Load: service combinationally so write-back sees the data this cycle.
  if (sim_.output("dmem_re")) {
    const auto addr =
        static_cast<std::uint32_t>(sim_.read_bus("dmem_addr", 32)) / 4;
    const auto dit = dmem_.find(addr);
    sim_.set_bus("dmem_rdata", 32, dit == dmem_.end() ? 0 : dit->second);
    sim_.evaluate();
  }
}

void Rv32Harness::step(int n) {
  for (int i = 0; i < n; ++i) {
    service_memories();
    // Commit stores before the clock edge.
    const auto wmask = static_cast<std::uint32_t>(sim_.read_bus("dmem_wmask", 4));
    if (wmask != 0) {
      const auto addr =
          static_cast<std::uint32_t>(sim_.read_bus("dmem_addr", 32)) / 4;
      const auto wdata = static_cast<std::uint32_t>(sim_.read_bus("dmem_wdata", 32));
      std::uint32_t cur = dmem_.count(addr) ? dmem_[addr] : 0;
      for (int lane = 0; lane < 4; ++lane) {
        if ((wmask >> lane) & 1u) {
          const std::uint32_t m = 0xffu << (8 * lane);
          cur = (cur & ~m) | (wdata & m);
        }
      }
      dmem_[addr] = cur;
    }
    sim_.tick();
    service_memories();
  }
}

std::uint32_t Rv32Harness::pc() const {
  return static_cast<std::uint32_t>(sim_.read_bus("pc", 32));
}

std::uint32_t Rv32Harness::read_mem(std::uint32_t addr) const {
  const auto it = dmem_.find(addr / 4);
  return it == dmem_.end() ? 0 : it->second;
}

void Rv32Harness::write_mem(std::uint32_t addr, std::uint32_t value) {
  dmem_[addr / 4] = value;
}

}  // namespace ffet::riscv
