// rv32.h — structural RV32I core generator.
//
// The paper evaluates its framework on "a 32-bit RISC-V core".  Lacking the
// authors' RTL and a commercial synthesis tool, this module *generates* a
// single-cycle RV32I core directly at the gate level, mapped onto the
// project's cell library: program counter, instruction decoder, immediate
// generator, 2R1W register file, an ALU built on Sklansky parallel-prefix
// adders with barrel shifters, branch unit, and load/store unit with
// byte/halfword extraction.
//
// Supported: the full RV32I base integer ISA except FENCE/ECALL/EBREAK/CSR
// (which are architectural no-ops for PPA purposes), plus optionally the
// RV32M multiplies.  The core is verified instruction-by-instruction by the
// gate-level simulator in the test suite.
//
// Interface (all multi-bit ports are bit-blasted `name<i>`):
//   inputs : clk, rst_n, inst[31:0], dmem_rdata[31:0]
//   outputs: pc[31:0], dmem_addr[31:0], dmem_wdata[31:0],
//            dmem_wmask[3:0], dmem_re, reg_write (debug)
//
// The instruction and data memories live in the testbench (tests/ and
// examples/), which services pc/dmem requests combinationally — the stance
// a block-level P&R evaluation takes anyway: memories are separate macros,
// the paper's core area figures are standard-cell area.

#pragma once

#include "netlist/netlist.h"
#include "stdcell/stdcell.h"

namespace ffet::riscv {

struct Rv32Options {
  /// Number of architectural registers implemented (x0..x<n-1>).  32 for
  /// the full core; tests use 8 for speed.  Must be a power of two >= 2.
  int num_registers = 32;

  /// Add the RV32M multiply instructions (MUL/MULH/MULHSU/MULHU) with a
  /// Wallace-tree array multiplier (~6.5k extra gates).  DIV/REM are not
  /// implemented.  Off by default so the paper-reproduction experiments run
  /// on the plain RV32I core.
  bool enable_m = false;
};

/// Generate the core netlist on `lib`.  Deterministic: same options + same
/// library produce the identical netlist.
netlist::Netlist build_rv32_core(const stdcell::Library& lib,
                                 const Rv32Options& options = {});

}  // namespace ffet::riscv
