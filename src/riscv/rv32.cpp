#include "riscv/rv32.h"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "netlist/builder.h"

namespace ffet::riscv {

using netlist::Builder;
using netlist::Bus;
using netlist::NetId;

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2i(int v) {
  int b = 0;
  while ((1 << b) < v) ++b;
  return b;
}

/// Extract a sub-bus [lo, lo+n) from `a`.
Bus slice(const Bus& a, int lo, int n) {
  Bus r(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(lo + i)];
  }
  return r;
}

/// Decode a fixed bit pattern: AND of bits (inverted where the pattern has
/// a zero).
NetId match_pattern(Builder& b, const Bus& bits, unsigned pattern) {
  std::vector<NetId> terms;
  terms.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool want = (pattern >> i) & 1u;
    terms.push_back(want ? bits[i] : b.inv(bits[i]));
  }
  return b.and_tree(terms);
}

/// Balanced binary mux tree over 2^k word inputs; sel LSB switches the
/// lowest level.
Bus mux_tree(Builder& b, std::vector<Bus> words, const Bus& sel) {
  assert(is_pow2(static_cast<int>(words.size())));
  std::size_t level = 0;
  while (words.size() > 1) {
    std::vector<Bus> next;
    next.reserve(words.size() / 2);
    for (std::size_t i = 0; i + 1 < words.size(); i += 2) {
      next.push_back(b.mux_bus(words[i], words[i + 1], sel[level]));
    }
    words = std::move(next);
    ++level;
  }
  return words.front();
}

Bus replicate(NetId v, int n) {
  return Bus(static_cast<std::size_t>(n), v);
}

}  // namespace

netlist::Netlist build_rv32_core(const stdcell::Library& lib,
                                 const Rv32Options& options) {
  const int R = options.num_registers;
  if (!is_pow2(R) || R < 2) {
    throw std::invalid_argument("num_registers must be a power of two >= 2");
  }
  const int RBITS = log2i(R);

  Builder b("rv32_core", &lib);

  // --- ports ---------------------------------------------------------------
  const NetId clk = b.input("clk");
  const NetId rst_n = b.input("rst_n");
  const Bus inst = b.input_bus("inst", 32);
  const Bus dmem_rdata = b.input_bus("dmem_rdata", 32);
  b.netlist().mark_clock_net(clk);

  // --- instruction fields ----------------------------------------------------
  const Bus opcode = slice(inst, 0, 7);
  const Bus rd_spec = slice(inst, 7, RBITS);
  const Bus funct3 = slice(inst, 12, 3);
  const Bus rs1_spec = slice(inst, 15, RBITS);
  const Bus rs2_spec = slice(inst, 20, RBITS);
  const NetId funct7b5 = inst[30];

  const NetId is_lui = match_pattern(b, opcode, 0b0110111);
  const NetId is_auipc = match_pattern(b, opcode, 0b0010111);
  const NetId is_jal = match_pattern(b, opcode, 0b1101111);
  const NetId is_jalr = match_pattern(b, opcode, 0b1100111);
  const NetId is_branch = match_pattern(b, opcode, 0b1100011);
  const NetId is_load = match_pattern(b, opcode, 0b0000011);
  const NetId is_store = match_pattern(b, opcode, 0b0100011);
  const NetId is_opimm = match_pattern(b, opcode, 0b0010011);
  const NetId is_op = match_pattern(b, opcode, 0b0110011);

  const NetId reg_write =
      b.or_tree({is_lui, is_auipc, is_jal, is_jalr, is_load, is_opimm, is_op});

  // --- immediates ------------------------------------------------------------
  const NetId sign = inst[31];
  Bus imm_i(32), imm_s(32), imm_b(32), imm_u(32), imm_j(32);
  for (int i = 0; i < 32; ++i) {
    auto at = [&](int bit) { return inst[static_cast<std::size_t>(bit)]; };
    const auto idx = static_cast<std::size_t>(i);
    imm_i[idx] = i < 11 ? at(20 + i) : sign;
    imm_s[idx] = i < 5 ? at(7 + i) : (i < 11 ? at(25 + (i - 5)) : sign);
    if (i == 0) imm_b[idx] = b.zero();
    else if (i < 5) imm_b[idx] = at(8 + (i - 1));
    else if (i < 11) imm_b[idx] = at(25 + (i - 5));
    else if (i == 11) imm_b[idx] = at(7);
    else imm_b[idx] = sign;
    imm_u[idx] = i < 12 ? b.zero() : at(i);
    if (i == 0) imm_j[idx] = b.zero();
    else if (i < 11) imm_j[idx] = at(21 + (i - 1));
    else if (i == 11) imm_j[idx] = at(20);
    else if (i < 20) imm_j[idx] = at(12 + (i - 12));
    else imm_j[idx] = sign;
  }
  Bus imm = b.mux_bus(imm_i, imm_s, is_store);
  imm = b.mux_bus(imm, imm_b, is_branch);
  imm = b.mux_bus(imm, imm_u, b.or2(is_lui, is_auipc));
  imm = b.mux_bus(imm, imm_j, is_jal);

  // --- program counter ---------------------------------------------------------
  const Bus next_pc = b.wires(32, "next_pc");
  const Bus pc = b.dffr_bus(next_pc, clk, rst_n);
  b.output_bus("pc", pc);

  Bus const4(32);
  for (int i = 0; i < 32; ++i) {
    const4[static_cast<std::size_t>(i)] = (i == 2) ? b.one() : b.zero();
  }
  const Bus pc_plus4 = b.add_fast(pc, const4, b.zero()).first;
  const Bus pc_plus_imm = b.add_fast(pc, imm, b.zero()).first;

  // --- register file (2R1W, x0 == 0) ------------------------------------------
  const Bus wb_data = b.wires(32, "wb");
  const NetId rd_nonzero = b.or_tree(rd_spec);
  const NetId wr_en = b.and2(reg_write, rd_nonzero);

  std::vector<Bus> regs(static_cast<std::size_t>(R));
  regs[0] = replicate(b.zero(), 32);
  for (int r = 1; r < R; ++r) {
    const NetId sel = match_pattern(b, rd_spec, static_cast<unsigned>(r));
    const NetId wen = b.and2(wr_en, sel);
    const Bus d = b.wires(32, "rfd");
    const Bus q = b.dff_bus(d, clk);
    for (int i = 0; i < 32; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      b.mux2_into(d[idx], q[idx], wb_data[idx], wen);
    }
    regs[static_cast<std::size_t>(r)] = q;
  }
  const Bus rs1 = mux_tree(b, regs, rs1_spec);
  const Bus rs2 = mux_tree(b, regs, rs2_spec);

  // --- ALU ---------------------------------------------------------------------
  // Operand A: rs1, or pc (AUIPC), or 0 (LUI).
  Bus alu_a = b.mux_bus(rs1, pc, is_auipc);
  alu_a = b.mux_bus(alu_a, replicate(b.zero(), 32), is_lui);
  // Operand B: rs2 for register-register ops and branch compare, else imm.
  const Bus alu_b = b.mux_bus(imm, rs2, b.or2(is_op, is_branch));

  // funct3 is an ALU opcode only for OP/OP-IMM; everything else adds.
  const NetId arith = b.or2(is_op, is_opimm);
  Bus f3(3);
  for (int i = 0; i < 3; ++i) {
    f3[static_cast<std::size_t>(i)] =
        b.and2(funct3[static_cast<std::size_t>(i)], arith);
  }
  const NetId f3_is_0 = b.nor2(b.or2(f3[0], f3[1]), f3[2]);
  const NetId f3_is_slt = b.and2(b.and2(f3[1], b.inv(f3[2])), b.inv(f3[0]));
  const NetId f3_is_sltu = b.and2(b.and2(f3[1], b.inv(f3[2])), f3[0]);

  // Subtract for: branches, SUB (OP with funct7[5]), SLT/SLTU.
  const NetId sub_en = b.or_tree(
      {is_branch, b.and_tree({is_op, funct7b5, f3_is_0}), f3_is_slt,
       f3_is_sltu});
  const Bus adder_b = b.xor_bus(alu_b, replicate(sub_en, 32));
  const auto [sum, cout] = b.add_fast(alu_a, adder_b, sub_en);

  // Comparisons (valid when sub_en): unsigned from the carry, signed from
  // sign bits and the difference sign.
  const NetId ltu = b.inv(cout);
  const NetId lt =
      b.mux2(sum[31], alu_a[31], b.xor2(alu_a[31], alu_b[31]));
  const NetId eq = b.equal(rs1, rs2);

  // Shifters: shamt is alu_b[4:0] (covers SLLI/SRLI immediates and
  // register shifts alike); arithmetic flag from funct7[5].
  const Bus shamt = slice(alu_b, 0, 5);
  const Bus sll = b.shift_left(alu_a, shamt);
  const Bus srx = b.shift_right(alu_a, shamt, funct7b5);

  // --- RV32M multiplier (optional) ---------------------------------------
  // funct7 == 0000001 with OP: MUL (f3=000), MULH (001), MULHSU (010),
  // MULHU (011).  Signed high words from the unsigned product via
  //   mulh   = mulhu - (a<0 ? b : 0) - (b<0 ? a : 0)   (mod 2^32)
  //   mulhsu = mulhu - (a<0 ? b : 0)                   (mod 2^32)
  Bus mul_res;
  NetId is_mulop = netlist::kNoNet;
  if (options.enable_m) {
    std::vector<NetId> f7_is_1;
    f7_is_1.push_back(inst[25]);
    for (int bit = 26; bit <= 31; ++bit) {
      f7_is_1.push_back(b.inv(inst[static_cast<std::size_t>(bit)]));
    }
    // Only the multiply half of RV32M (funct3[2] == 0).
    is_mulop = b.and_tree({is_op, b.and_tree(f7_is_1), b.inv(funct3[2])});
    const Bus prod = b.multiply(rs1, rs2);  // 64-bit unsigned product
    const Bus mul_lo = slice(prod, 0, 32);
    const Bus mulhu_r = slice(prod, 32, 32);
    const Bus corr_a = b.mask_bus(rs2, rs1[31]);  // a<0 ? b : 0
    const Bus corr_b = b.mask_bus(rs1, rs2[31]);  // b<0 ? a : 0
    const Bus mulhsu_r = b.sub(mulhu_r, corr_a).first;
    const Bus mulh_r = b.sub(mulhsu_r, corr_b).first;
    // funct3[1:0] select: 00 MUL, 01 MULH, 10 MULHSU, 11 MULHU.
    const Bus m0 = b.mux_bus(mul_lo, mulh_r, funct3[0]);
    const Bus m1 = b.mux_bus(mulhsu_r, mulhu_r, funct3[0]);
    mul_res = b.mux_bus(m0, m1, funct3[1]);
  }

  const Bus and_r = b.and_bus(alu_a, alu_b);
  const Bus or_r = b.or_bus(alu_a, alu_b);
  const Bus xor_r = b.xor_bus(alu_a, alu_b);
  Bus slt_r = replicate(b.zero(), 32);
  slt_r[0] = lt;
  Bus sltu_r = replicate(b.zero(), 32);
  sltu_r[0] = ltu;

  // funct3-indexed 8:1 result mux: 000 add 001 sll 010 slt 011 sltu
  // 100 xor 101 srx 110 or 111 and.
  const Bus m00 = b.mux_bus(sum, sll, f3[0]);
  const Bus m01 = b.mux_bus(slt_r, sltu_r, f3[0]);
  const Bus m10 = b.mux_bus(xor_r, srx, f3[0]);
  const Bus m11 = b.mux_bus(or_r, and_r, f3[0]);
  const Bus ma = b.mux_bus(m00, m01, f3[1]);
  const Bus mb = b.mux_bus(m10, m11, f3[1]);
  Bus alu_res = b.mux_bus(ma, mb, f3[2]);
  if (options.enable_m) {
    alu_res = b.mux_bus(alu_res, mul_res, is_mulop);
  }

  // --- branch resolution ---------------------------------------------------------
  // funct3: 000 beq 001 bne 100 blt 101 bge 110 bltu 111 bgeu.
  const NetId t_eq = b.mux2(eq, b.inv(eq), funct3[0]);
  const NetId t_lt = b.mux2(lt, b.inv(lt), funct3[0]);
  const NetId t_ltu = b.mux2(ltu, b.inv(ltu), funct3[0]);
  const NetId t_cmp = b.mux2(t_lt, t_ltu, funct3[1]);
  const NetId cond = b.mux2(t_eq, t_cmp, funct3[2]);
  const NetId taken = b.and2(is_branch, cond);

  // --- next PC ----------------------------------------------------------------
  Bus jalr_target = sum;
  jalr_target[0] = b.zero();  // JALR clears the target LSB
  const Bus np1 =
      b.mux_bus(pc_plus4, pc_plus_imm, b.or2(taken, is_jal));
  for (int i = 0; i < 32; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    b.mux2_into(next_pc[idx], np1[idx], jalr_target[idx], is_jalr);
  }

  // --- data memory interface -----------------------------------------------------
  b.output_bus("dmem_addr", sum);
  // Store alignment: shift the store data left by 8 * addr[1:0].
  const Bus store_shift = {b.zero(), b.zero(), b.zero(), sum[0], sum[1]};
  const Bus wdata = b.shift_left(rs2, store_shift);
  b.output_bus("dmem_wdata", wdata);

  const NetId size_b = b.nor2(funct3[0], funct3[1]);
  const NetId size_h = b.and2(funct3[0], b.inv(funct3[1]));
  const NetId size_w = b.and2(funct3[1], b.inv(funct3[0]));
  const NetId a0 = sum[0];
  const NetId a1 = sum[1];
  // Byte-lane masks.
  Bus lane(4);
  lane[0] = b.or_tree({size_w, b.and2(size_h, b.inv(a1)),
                       b.and_tree({size_b, b.inv(a1), b.inv(a0)})});
  lane[1] = b.or_tree({size_w, b.and2(size_h, b.inv(a1)),
                       b.and_tree({size_b, b.inv(a1), a0})});
  lane[2] = b.or_tree({size_w, b.and2(size_h, a1),
                       b.and_tree({size_b, a1, b.inv(a0)})});
  lane[3] = b.or_tree({size_w, b.and2(size_h, a1),
                       b.and_tree({size_b, a1, a0})});
  Bus wmask(4);
  for (int i = 0; i < 4; ++i) {
    wmask[static_cast<std::size_t>(i)] =
        b.and2(lane[static_cast<std::size_t>(i)], is_store);
  }
  b.output_bus("dmem_wmask", wmask);
  b.output("dmem_re", is_load);
  b.output("reg_write", reg_write);

  // --- load extraction -------------------------------------------------------------
  const Bus load_shift = {b.zero(), b.zero(), b.zero(), sum[0], sum[1]};
  const Bus shifted = b.shift_right(dmem_rdata, load_shift, b.zero());
  const NetId usign = funct3[2];  // LBU/LHU
  const NetId sign_b = b.and2(shifted[7], b.inv(usign));
  const NetId sign_h = b.and2(shifted[15], b.inv(usign));
  Bus load_b(32), load_h(32);
  for (int i = 0; i < 32; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    load_b[idx] = i < 8 ? shifted[idx] : sign_b;
    load_h[idx] = i < 16 ? shifted[idx] : sign_h;
  }
  const Bus ld1 = b.mux_bus(load_b, load_h, funct3[0]);
  const Bus load_data = b.mux_bus(ld1, shifted, funct3[1]);

  // --- write-back ---------------------------------------------------------------
  const Bus wb1 = b.mux_bus(alu_res, load_data, is_load);
  const NetId link = b.or2(is_jal, is_jalr);
  for (int i = 0; i < 32; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    b.mux2_into(wb_data[idx], wb1[idx], pc_plus4[idx], link);
  }

  return b.take();
}

}  // namespace ffet::riscv
