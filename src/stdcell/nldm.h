// nldm.h — non-linear delay model (NLDM) lookup tables.
//
// The characterizer (src/liberty) fills these; static timing analysis
// (src/sta) evaluates them.  Mirrors the Liberty NLDM format the paper's
// commercial flow consumes: 2-D tables indexed by input transition time and
// output load, one table each for delay, output transition and switching
// energy, separately for rising and falling output edges.
//
// Units used throughout the project:
//   time   — picoseconds (ps)
//   cap    — femtofarads (fF)
//   energy — femtojoules (fJ) per output transition
//   power  — nanowatts (nW) for leakage

#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace ffet::stdcell {

/// 2-D lookup table with bilinear interpolation and clamped extrapolation
/// (commercial STA clamps rather than extrapolating wildly; we do the same
/// so pathological slews cannot produce negative delays).
class NldmTable {
 public:
  NldmTable() = default;
  NldmTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
            std::vector<double> values_row_major)
      : slew_ps_(std::move(slew_axis_ps)),
        load_ff_(std::move(load_axis_ff)),
        values_(std::move(values_row_major)) {
    assert(values_.size() == slew_ps_.size() * load_ff_.size());
  }

  bool empty() const { return values_.empty(); }
  const std::vector<double>& slew_axis() const { return slew_ps_; }
  const std::vector<double>& load_axis() const { return load_ff_; }
  const std::vector<double>& values() const { return values_; }

  double at(std::size_t slew_idx, std::size_t load_idx) const {
    return values_[slew_idx * load_ff_.size() + load_idx];
  }

  /// Bilinear interpolation; inputs outside the axis range are clamped to
  /// the boundary (never extrapolated below the first sample).
  double lookup(double slew_ps, double load_ff) const;

 private:
  std::vector<double> slew_ps_;
  std::vector<double> load_ff_;
  std::vector<double> values_;
};

/// One input→output timing arc.
struct TimingArc {
  int from_pin = -1;  ///< index into CellType::pins()
  int to_pin = -1;

  NldmTable delay_rise;   ///< ps, output rising
  NldmTable delay_fall;   ///< ps, output falling
  NldmTable trans_rise;   ///< output transition ps
  NldmTable trans_fall;
  NldmTable energy_rise;  ///< internal switching energy fJ
  NldmTable energy_fall;
};

/// Full timing/power model for one cell type.
struct TimingModel {
  std::vector<TimingArc> arcs;

  double leakage_nw = 0.0;

  // Sequential-only fields (DFF): the CP→Q arc lives in `arcs`; these are
  // the D-pin constraints.
  double setup_ps = 0.0;
  double hold_ps = 0.0;

  const TimingArc* arc_from(int from_pin) const {
    for (const TimingArc& a : arcs) {
      if (a.from_pin == from_pin) return &a;
    }
    return nullptr;
  }
};

}  // namespace ffet::stdcell
