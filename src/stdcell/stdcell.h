// stdcell.h — dual-sided standard-cell library model.
//
// This module carries everything the paper's modified LEF carries:
//
//   * cell footprints (width in CPP × tech cell height), with the Fig. 4
//     area relationships: simple combinational cells shrink by exactly the
//     3.5T/4T height ratio; MUX/DFF shrink further in FFET thanks to the
//     Split Gate; AOI22/OAI22 pay one extra CPP in FFET for the extra Drain
//     Merge;
//   * pin lists with *sides*.  In CFET every pin is on the frontside M0.
//     In FFET every output pin is a *dual-sided output pin* (the Drain Merge
//     reaches both FM0 and BM0 — Sec. III.A), and every input pin can be
//     redistributed to the frontside or the backside ("their locations
//     defined in the modified standard cell LEF files can be flexibly
//     adjusted");
//   * structural facts (stage count, transistor pairs, n-p links, gate
//     links, Split-Gate usage) consumed by the library characterizer
//     (src/liberty) to produce NLDM timing/power models;
//   * the physical-only cells of the power plan: the FFET Power Tap Cell
//     and filler cells.
//
// Input-pin redistribution (the FP_x BP_y DoEs of Sec. IV) is implemented by
// `build_library` taking a PinConfig: input pins across the library are
// deterministically assigned to the backside so that the library-wide
// backside input-pin fraction matches the requested ratio.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.h"
#include "tech/tech.h"

namespace ffet::stdcell {

using geom::Nm;
using tech::Side;
using tech::Technology;

/// Logical function of a cell type; drives structure, pin list and the
/// gate-level evaluator used by tests and the netlist simulator.
enum class Function : std::uint8_t {
  Inv, Buf, Nand2, Nor2, And2, Or2, Xor2, Xnor2,
  Aoi21, Oai21, Aoi22, Oai22, Mux2, Dff, DffR,
  ClkBuf, TieLo, TieHi, Tap, Filler,
};

std::string_view to_string(Function f);

bool is_sequential(Function f);
/// Physical-only cells take placement area but have no pins/arcs.
bool is_physical_only(Function f);

enum class PinDir : std::uint8_t { Input, Output, Clock };

/// Where a pin's access shapes live.  `Both` models the FFET dual-sided
/// output pin: the router may reach it from either side.
enum class PinSide : std::uint8_t { Front, Back, Both };

std::string_view to_string(PinSide s);

struct CellPin {
  std::string name;
  PinDir dir = PinDir::Input;
  PinSide side = PinSide::Front;
  /// Input capacitance in fF (filled by the characterizer; 0 for outputs).
  double cap_ff = 0.0;
  /// Pin access point, relative to the cell origin (lower-left).  Used for
  /// DEF emission and for routing-demand estimation.
  geom::Point offset;
};

/// Structural facts that determine both area and parasitics.  Width is
/// stored per technology because the Split Gate / extra-Drain-Merge effects
/// change CPP counts between CFET and FFET (Sec. II.B, Fig. 3-4).
struct CellStructure {
  int stages = 1;           ///< logic stages from input to output
  int tx_pairs = 1;         ///< number of stacked n/p transistor pairs
  int fins_per_device = 2;  ///< the paper's two-fin transistor assumption
  int np_links = 1;         ///< n-p common-drain connections (Drain Merge in
                            ///< FFET, supervia chain in CFET)
  int gate_links = 1;       ///< n-p common-gate connections (Gate Merge in
                            ///< FFET, stacked-gate contact in CFET)
  int split_gate_pairs = 0; ///< pairs driven by *different* signals: in FFET
                            ///< these skip the Gate Merge (Split Gate) and
                            ///< save area; in CFET they cost one extra CPP
                            ///< each (Fig. 3c)
  int width_cpp_cfet = 2;
  int width_cpp_ffet = 2;
  int drive = 1;            ///< drive strength multiplier (D1/D2/D4/D8)
};

// Defined in stdcell/nldm.h; filled in by the characterizer (src/liberty)
// and consumed by STA (src/sta).  Attached to cell types so downstream
// stages need only the library.
struct TimingModel;

/// One cell master ("INVD1", "DFFD2", ...).
class CellType {
 public:
  CellType(std::string name, Function func, CellStructure structure,
           Nm width, Nm height);
  ~CellType();
  CellType(CellType&&) noexcept;
  CellType& operator=(CellType&&) noexcept;
  CellType(const CellType&) = delete;
  CellType& operator=(const CellType&) = delete;

  const std::string& name() const { return name_; }
  Function function() const { return func_; }
  const CellStructure& structure() const { return structure_; }

  Nm width() const { return width_; }
  Nm height() const { return height_; }
  double area_um2() const {
    return geom::to_um(width_) * geom::to_um(height_);
  }

  const std::vector<CellPin>& pins() const { return pins_; }
  std::vector<CellPin>& mutable_pins() { return pins_; }
  const CellPin* find_pin(std::string_view pin_name) const;
  /// Index into pins() for a name; -1 if absent.
  int pin_index(std::string_view pin_name) const;

  /// The single output pin (nullptr for physical-only cells).
  const CellPin* output_pin() const;
  std::vector<const CellPin*> input_pins() const;  ///< includes clock pins

  bool sequential() const { return is_sequential(func_); }
  bool physical_only() const { return is_physical_only(func_); }

  /// Attached NLDM model; null until the characterizer runs.
  TimingModel* timing_model() const { return timing_.get(); }
  void set_timing_model(std::unique_ptr<TimingModel> m);

  void add_pin(CellPin pin) { pins_.push_back(std::move(pin)); }

 private:
  std::string name_;
  Function func_;
  CellStructure structure_;
  Nm width_;
  Nm height_;
  std::vector<CellPin> pins_;
  std::unique_ptr<TimingModel> timing_;
};

/// Input-pin redistribution configuration (Sec. IV DoEs).
struct PinConfig {
  /// Fraction of library input pins placed on the backside: 0.0 gives the
  /// single-sided FFET FM12-style library (and is mandatory for CFET);
  /// 0.5 gives FP0.5/BP0.5.
  double backside_input_fraction = 0.0;

  /// Label fragment for reports, e.g. "FP0.5BP0.5"; empty -> derived.
  std::string label() const;
};

/// A characterized cell library bound to one technology + pin config.
class Library {
 public:
  Library(const Technology* tech, PinConfig pin_config);

  const Technology& tech() const { return *tech_; }
  const PinConfig& pin_config() const { return pin_config_; }
  const std::string& name() const { return name_; }

  const CellType* find(std::string_view cell_name) const;
  const CellType& at(std::string_view cell_name) const;
  CellType& mutable_at(std::string_view cell_name);

  const std::vector<std::unique_ptr<CellType>>& cells() const {
    return cells_;
  }

  CellType& add_cell(std::unique_ptr<CellType> cell);

  /// Library-wide realized backside input-pin fraction (over distinct
  /// library pins, unweighted by instance counts).
  double backside_input_pin_fraction() const;

  /// Name of the physical tap cell, empty if the technology needs none.
  const std::string& tap_cell_name() const { return tap_cell_name_; }
  void set_tap_cell_name(std::string n) { tap_cell_name_ = std::move(n); }

 private:
  const Technology* tech_;
  PinConfig pin_config_;
  std::string name_;
  std::vector<std::unique_ptr<CellType>> cells_;
  /// Heterogeneous-lookup hash map (find() takes string_view without a
  /// temporary std::string); ordering is irrelevant — cells() iterates the
  /// insertion-ordered vector.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, CellType*, NameHash, std::equal_to<>>
      by_name_;
  std::string tap_cell_name_;
};

/// Build the full Fig. 4 cell set (plus clock buffers and physical cells)
/// for the given technology, with input pins redistributed per `config`.
/// For CFET, `config.backside_input_fraction` must be 0 (no backside pins);
/// violating this throws std::invalid_argument.
///
/// The returned library is *uncharacterized*: call
/// liberty::characterize_library to attach NLDM models and pin caps.
Library build_library(const Technology& tech, PinConfig config = {});

/// Evaluate a combinational function on input values ordered as in the cell
/// pin list (excluding clock).  Returns nullopt for sequential or physical
/// cells.  Used by the gate-level simulator and by netlist property tests.
std::optional<bool> evaluate(Function f, const std::vector<bool>& inputs);

}  // namespace ffet::stdcell
