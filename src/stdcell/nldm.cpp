#include "stdcell/nldm.h"

#include <algorithm>

namespace ffet::stdcell {

namespace {

/// Locate `v` on `axis`: returns the index i such that axis[i] <= v <=
/// axis[i+1], clamped to the valid segment range, plus the interpolation
/// fraction within that segment (clamped to [0,1]).
std::pair<std::size_t, double> locate(const std::vector<double>& axis,
                                      double v) {
  if (axis.size() < 2) return {0, 0.0};
  if (v <= axis.front()) return {0, 0.0};
  if (v >= axis.back()) return {axis.size() - 2, 1.0};
  const auto it = std::upper_bound(axis.begin(), axis.end(), v);
  const std::size_t hi = static_cast<std::size_t>(it - axis.begin());
  const std::size_t lo = hi - 1;
  const double span = axis[hi] - axis[lo];
  const double frac = span > 0.0 ? (v - axis[lo]) / span : 0.0;
  return {lo, frac};
}

}  // namespace

double NldmTable::lookup(double slew_ps, double load_ff) const {
  if (values_.empty()) return 0.0;
  if (slew_ps_.size() == 1 && load_ff_.size() == 1) return values_[0];

  const auto [si, sf] = locate(slew_ps_, slew_ps);
  const auto [li, lf] = locate(load_ff_, load_ff);

  if (slew_ps_.size() == 1) {
    return at(0, li) * (1.0 - lf) + at(0, li + 1) * lf;
  }
  if (load_ff_.size() == 1) {
    return at(si, 0) * (1.0 - sf) + at(si + 1, 0) * sf;
  }
  const double v00 = at(si, li);
  const double v01 = at(si, li + 1);
  const double v10 = at(si + 1, li);
  const double v11 = at(si + 1, li + 1);
  const double r0 = v00 * (1.0 - lf) + v01 * lf;
  const double r1 = v10 * (1.0 - lf) + v11 * lf;
  return r0 * (1.0 - sf) + r1 * sf;
}

}  // namespace ffet::stdcell
