#include "stdcell/stdcell.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stdcell/nldm.h"

namespace ffet::stdcell {

std::string_view to_string(Function f) {
  switch (f) {
    case Function::Inv: return "INV";
    case Function::Buf: return "BUF";
    case Function::Nand2: return "NAND2";
    case Function::Nor2: return "NOR2";
    case Function::And2: return "AND2";
    case Function::Or2: return "OR2";
    case Function::Xor2: return "XOR2";
    case Function::Xnor2: return "XNOR2";
    case Function::Aoi21: return "AOI21";
    case Function::Oai21: return "OAI21";
    case Function::Aoi22: return "AOI22";
    case Function::Oai22: return "OAI22";
    case Function::Mux2: return "MUX2";
    case Function::Dff: return "DFF";
    case Function::DffR: return "DFFR";
    case Function::ClkBuf: return "CLKBUF";
    case Function::TieLo: return "TIELO";
    case Function::TieHi: return "TIEHI";
    case Function::Tap: return "TAP";
    case Function::Filler: return "FILLER";
  }
  return "?";
}

bool is_sequential(Function f) {
  return f == Function::Dff || f == Function::DffR;
}

bool is_physical_only(Function f) {
  return f == Function::Tap || f == Function::Filler;
}

std::string_view to_string(PinSide s) {
  switch (s) {
    case PinSide::Front: return "front";
    case PinSide::Back: return "back";
    case PinSide::Both: return "both";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CellType
// ---------------------------------------------------------------------------

CellType::CellType(std::string name, Function func, CellStructure structure,
                   Nm width, Nm height)
    : name_(std::move(name)),
      func_(func),
      structure_(structure),
      width_(width),
      height_(height) {}

CellType::~CellType() = default;
CellType::CellType(CellType&&) noexcept = default;
CellType& CellType::operator=(CellType&&) noexcept = default;

const CellPin* CellType::find_pin(std::string_view pin_name) const {
  for (const CellPin& p : pins_) {
    if (p.name == pin_name) return &p;
  }
  return nullptr;
}

int CellType::pin_index(std::string_view pin_name) const {
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    if (pins_[i].name == pin_name) return static_cast<int>(i);
  }
  return -1;
}

const CellPin* CellType::output_pin() const {
  for (const CellPin& p : pins_) {
    if (p.dir == PinDir::Output) return &p;
  }
  return nullptr;
}

std::vector<const CellPin*> CellType::input_pins() const {
  std::vector<const CellPin*> out;
  for (const CellPin& p : pins_) {
    if (p.dir == PinDir::Input || p.dir == PinDir::Clock) out.push_back(&p);
  }
  return out;
}

void CellType::set_timing_model(std::unique_ptr<TimingModel> m) {
  timing_ = std::move(m);
}

// ---------------------------------------------------------------------------
// PinConfig
// ---------------------------------------------------------------------------

std::string PinConfig::label() const {
  const double bp = backside_input_fraction;
  if (bp <= 0.0) return "FP1.0";
  std::ostringstream os;
  auto fmt = [&](double v) {
    std::ostringstream o;
    o << v;  // shortest representation: 0.5, 0.04, ...
    std::string s = o.str();
    if (s.rfind("0.", 0) == 0) return s;  // keep "0.5" style
    return s;
  };
  os << "FP" << fmt(1.0 - bp) << "BP" << fmt(bp);
  return os.str();
}

// ---------------------------------------------------------------------------
// Library
// ---------------------------------------------------------------------------

Library::Library(const Technology* tech, PinConfig pin_config)
    : tech_(tech), pin_config_(pin_config) {
  name_ = std::string(tech::to_string(tech->kind())) + " " +
          pin_config_.label();
}

const CellType* Library::find(std::string_view cell_name) const {
  auto it = by_name_.find(cell_name);
  return it == by_name_.end() ? nullptr : it->second;
}

const CellType& Library::at(std::string_view cell_name) const {
  const CellType* c = find(cell_name);
  if (!c) throw std::out_of_range("no cell named " + std::string(cell_name));
  return *c;
}

CellType& Library::mutable_at(std::string_view cell_name) {
  auto it = by_name_.find(cell_name);
  if (it == by_name_.end()) {
    throw std::out_of_range("no cell named " + std::string(cell_name));
  }
  return *it->second;
}

CellType& Library::add_cell(std::unique_ptr<CellType> cell) {
  CellType& ref = *cell;
  if (by_name_.contains(ref.name())) {
    throw std::invalid_argument("duplicate cell " + ref.name());
  }
  by_name_.emplace(ref.name(), cell.get());
  cells_.push_back(std::move(cell));
  return ref;
}

double Library::backside_input_pin_fraction() const {
  int total = 0;
  int back = 0;
  for (const auto& c : cells_) {
    if (c->physical_only()) continue;
    // Clock buffers are not redistributable (CTS routes frontside), so
    // they do not count toward the DoE's input-pin population.
    if (c->function() == Function::ClkBuf) continue;
    for (const CellPin& p : c->pins()) {
      if (p.dir != PinDir::Input) continue;  // clock pins stay frontside
      ++total;
      if (p.side == PinSide::Back) ++back;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(back) / total;
}

// ---------------------------------------------------------------------------
// Cell catalogue
// ---------------------------------------------------------------------------

namespace {

struct CellSpec {
  Function func;
  int drive;
  std::vector<std::string> inputs;  ///< data inputs, in evaluate() order
  std::string clock;                ///< non-empty for sequential cells
  std::string output;
  CellStructure structure;          ///< width fields per tech
};

CellStructure st(int stages, int pairs, int np, int gates, int split,
                 int w_cfet, int w_ffet, int drive) {
  CellStructure s;
  s.stages = stages;
  s.tx_pairs = pairs;
  s.np_links = np;
  s.gate_links = gates;
  s.split_gate_pairs = split;
  s.width_cpp_cfet = w_cfet;
  s.width_cpp_ffet = w_ffet;
  s.drive = drive;
  return s;
}

/// The full catalogue: the Fig. 4 cell set plus clock buffers and physical
/// cells.  Width CPP counts encode the paper's area mechanisms:
///  * simple combinational cells: identical CPP count in both techs, so the
///    FFET area gain is exactly the 3.5T/4T height ratio (12.5 %);
///  * MUX2/DFF/DFFR: the Split Gate lets FFET stack complementary-clocked
///    gate pairs that cost CFET one extra CPP each (Fig. 3), so FFET uses
///    fewer CPPs — the extra gain Fig. 4 reports;
///  * AOI22/OAI22: FFET needs one extra Drain Merge that costs +1 CPP — the
///    only cells where FFET loses area (Sec. II.B).
std::vector<CellSpec> catalogue() {
  std::vector<CellSpec> cs;
  // INV / BUF / CLKBUF ladders.  Buffers: first stage sized ~drive/2.
  for (int d : {1, 2, 4, 8}) {
    const int p1 = d;  // output-stage pairs
    cs.push_back({Function::Inv, d, {"I"}, "", "ZN",
                  st(1, p1, p1, p1, 0, 1 + d, 1 + d, d)});
    const int p0 = std::max(1, d / 2);
    cs.push_back({Function::Buf, d, {"I"}, "", "Z",
                  st(2, p0 + p1, p0 + p1, p0 + p1, 0, 2 + p0 + d, 2 + p0 + d, d)});
  }
  for (int d : {2, 4, 8}) {
    const int p0 = std::max(1, d / 2);
    cs.push_back({Function::ClkBuf, d, {"I"}, "", "Z",
                  st(2, p0 + d, p0 + d, p0 + d, 0, 2 + p0 + d, 2 + p0 + d, d)});
  }
  // Tie cells: constant generators (gate tied to rail inside the cell).
  cs.push_back({Function::TieLo, 1, {}, "", "ZN", st(1, 1, 1, 0, 0, 2, 2, 1)});
  cs.push_back({Function::TieHi, 1, {}, "", "Z", st(1, 1, 1, 0, 0, 2, 2, 1)});
  for (int d : {1, 2, 4, 8}) {
    const int m = d;  // fingers multiply with drive
    cs.push_back({Function::Nand2, d, {"A1", "A2"}, "", "ZN",
                  st(1, 2 * m, m, 2 * m, 0, 2 + 2 * m, 2 + 2 * m, d)});
    cs.push_back({Function::Nor2, d, {"A1", "A2"}, "", "ZN",
                  st(1, 2 * m, m, 2 * m, 0, 2 + 2 * m, 2 + 2 * m, d)});
    cs.push_back({Function::And2, d, {"A1", "A2"}, "", "Z",
                  st(2, 2 + m, 1 + m, 2 + m, 0, 3 + 2 * m, 3 + 2 * m, d)});
    cs.push_back({Function::Or2, d, {"A1", "A2"}, "", "Z",
                  st(2, 2 + m, 1 + m, 2 + m, 0, 3 + 2 * m, 3 + 2 * m, d)});
    cs.push_back({Function::Xor2, d, {"A1", "A2"}, "", "Z",
                  st(2, 4 + m, 2 + m, 3 + m, 0, 5 + m, 5 + m, d)});
    cs.push_back({Function::Xnor2, d, {"A1", "A2"}, "", "ZN",
                  st(2, 4 + m, 2 + m, 3 + m, 0, 5 + m, 5 + m, d)});
    cs.push_back({Function::Aoi21, d, {"A1", "A2", "B"}, "", "ZN",
                  st(1, 3 * m, 2 * m, 3 * m, 0, 3 + m, 3 + m, d)});
    cs.push_back({Function::Oai21, d, {"A1", "A2", "B"}, "", "ZN",
                  st(1, 3 * m, 2 * m, 3 * m, 0, 3 + m, 3 + m, d)});
    // AOI22/OAI22: FFET pays one extra Drain Merge -> +1 CPP (Sec. II.B).
    cs.push_back({Function::Aoi22, d, {"A1", "A2", "B1", "B2"}, "", "ZN",
                  st(1, 4 * m, 3 * m, 4 * m, 0, 4 + m, 5 + m, d)});
    cs.push_back({Function::Oai22, d, {"A1", "A2", "B1", "B2"}, "", "ZN",
                  st(1, 4 * m, 3 * m, 4 * m, 0, 4 + m, 5 + m, d)});
    // MUX2: two transmission gates with complementary selects — the CFET
    // cannot stack S over SB without the Split Gate and wastes 1 CPP
    // (Fig. 3c); FFET stacks them.
    cs.push_back({Function::Mux2, d, {"I0", "I1", "S"}, "", "Z",
                  st(2, 5 + m, 3 + m, 5 + m, 2, 6 + m, 5 + m, d)});
    // DFF: master/slave of C2MOS latches + clock inverter pair: four
    // complementary-clocked pairs -> CFET wastes 2 extra CPP.
    cs.push_back({Function::Dff, d, {"D"}, "CP", "Q",
                  st(4, 9 + m, 6 + m, 9 + m, 4, 11 + m, 9 + m, d)});
    cs.push_back({Function::DffR, d, {"D", "RN"}, "CP", "Q",
                  st(4, 11 + m, 7 + m, 11 + m, 4, 13 + m, 11 + m, d)});
  }
  return cs;
}

std::string cell_name_of(const CellSpec& s) {
  return std::string(to_string(s.func)) + "D" + std::to_string(s.drive);
}

}  // namespace

Library build_library(const Technology& tech, PinConfig config) {
  const bool is_ffet = tech.supports_backside_pins();
  if (!is_ffet && config.backside_input_fraction > 0.0) {
    throw std::invalid_argument(
        "CFET cells cannot expose backside pins (no backside M0)");
  }
  if (config.backside_input_fraction < 0.0 ||
      config.backside_input_fraction > 1.0) {
    throw std::invalid_argument("backside_input_fraction outside [0,1]");
  }

  Library lib(&tech, config);
  const Nm cpp = tech.cpp();
  const Nm height = tech.cell_height();

  // Error-diffusion accumulator: walking pins in deterministic catalogue
  // order, send a pin to the backside each time the running debt crosses 1.
  // This realizes the requested library-wide ratio as closely as an integer
  // pin count allows, with the assignment spread evenly over the library
  // rather than clustered in the first cells.
  double debt = 0.0;

  for (const CellSpec& spec : catalogue()) {
    const int width_cpp = is_ffet ? spec.structure.width_cpp_ffet
                                  : spec.structure.width_cpp_cfet;
    auto cell = std::make_unique<CellType>(cell_name_of(spec), spec.func,
                                           spec.structure,
                                           width_cpp * cpp, height);
    int pin_slot = 0;
    for (const std::string& in : spec.inputs) {
      CellPin p;
      p.name = in;
      p.dir = PinDir::Input;
      p.side = PinSide::Front;
      // Clock buffers are exempt from redistribution: the clock tree is
      // routed entirely on the frontside in every DoE of the paper.
      if (is_ffet && spec.func != Function::ClkBuf) {
        debt += config.backside_input_fraction;
        if (debt >= 1.0 - 1e-12) {
          p.side = PinSide::Back;
          debt -= 1.0;
        }
      }
      p.offset = {static_cast<Nm>((pin_slot % width_cpp) * cpp + cpp / 2),
                  static_cast<Nm>(tech.track_pitch() *
                                  (1 + pin_slot / width_cpp))};
      ++pin_slot;
      cell->add_pin(std::move(p));
    }
    if (!spec.clock.empty()) {
      CellPin p;
      p.name = spec.clock;
      p.dir = PinDir::Clock;
      // Clock pins stay on the frontside: the clock tree is routed on the
      // frontside in all configurations of the paper's DoEs.
      p.side = PinSide::Front;
      p.offset = {cpp / 2, tech.track_pitch()};
      cell->add_pin(std::move(p));
    }
    {
      CellPin p;
      p.name = spec.output;
      p.dir = PinDir::Output;
      // FFET: dual-sided output pin — the Drain Merge reaches FM0 and BM0
      // so the router may exit on either side (Sec. III.A).
      p.side = is_ffet ? PinSide::Both : PinSide::Front;
      p.offset = {static_cast<Nm>((width_cpp - 1) * cpp + cpp / 2),
                  tech.track_pitch() * 2};
      cell->add_pin(std::move(p));
    }
    lib.add_cell(std::move(cell));
  }

  // Physical cells.
  if (tech.power_rules().tap_cell_width_cpp > 0) {
    CellStructure s;
    s.stages = 0;
    s.tx_pairs = 0;
    s.np_links = 0;
    s.gate_links = 0;
    s.width_cpp_cfet = s.width_cpp_ffet = tech.power_rules().tap_cell_width_cpp;
    auto tap = std::make_unique<CellType>(
        "TAPCELL", Function::Tap, s,
        tech.power_rules().tap_cell_width_cpp * cpp, height);
    lib.set_tap_cell_name(tap->name());
    lib.add_cell(std::move(tap));
  }
  for (int w : {1, 2, 4}) {
    CellStructure s;
    s.stages = 0;
    s.tx_pairs = 0;
    s.np_links = 0;
    s.gate_links = 0;
    s.width_cpp_cfet = s.width_cpp_ffet = w;
    lib.add_cell(std::make_unique<CellType>("FILLER" + std::to_string(w),
                                            Function::Filler, s, w * cpp,
                                            height));
  }
  return lib;
}

// ---------------------------------------------------------------------------
// Boolean evaluation
// ---------------------------------------------------------------------------

std::optional<bool> evaluate(Function f, const std::vector<bool>& in) {
  auto need = [&](std::size_t n) { return in.size() == n; };
  switch (f) {
    case Function::Inv:
      if (!need(1)) return std::nullopt;
      return !in[0];
    case Function::Buf:
    case Function::ClkBuf:
      if (!need(1)) return std::nullopt;
      return in[0];
    case Function::Nand2:
      if (!need(2)) return std::nullopt;
      return !(in[0] && in[1]);
    case Function::Nor2:
      if (!need(2)) return std::nullopt;
      return !(in[0] || in[1]);
    case Function::And2:
      if (!need(2)) return std::nullopt;
      return in[0] && in[1];
    case Function::Or2:
      if (!need(2)) return std::nullopt;
      return in[0] || in[1];
    case Function::Xor2:
      if (!need(2)) return std::nullopt;
      return in[0] != in[1];
    case Function::Xnor2:
      if (!need(2)) return std::nullopt;
      return in[0] == in[1];
    case Function::Aoi21:
      if (!need(3)) return std::nullopt;
      return !((in[0] && in[1]) || in[2]);
    case Function::Oai21:
      if (!need(3)) return std::nullopt;
      return !((in[0] || in[1]) && in[2]);
    case Function::Aoi22:
      if (!need(4)) return std::nullopt;
      return !((in[0] && in[1]) || (in[2] && in[3]));
    case Function::Oai22:
      if (!need(4)) return std::nullopt;
      return !((in[0] || in[1]) && (in[2] || in[3]));
    case Function::Mux2:
      if (!need(3)) return std::nullopt;
      return in[2] ? in[1] : in[0];
    case Function::TieLo:
      if (!need(0)) return std::nullopt;
      return false;
    case Function::TieHi:
      if (!need(0)) return std::nullopt;
      return true;
    case Function::Dff:
    case Function::DffR:
    case Function::Tap:
    case Function::Filler:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace ffet::stdcell
