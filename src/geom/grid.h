// grid.h — dense 2-D grid container used for gcell congestion maps, placement
// density bins and utilization bookkeeping.
//
// A `Grid2D<T>` is a rectangular array of cells addressed by (col, row) with
// row-major storage.  It deliberately does not know about nanometer
// coordinates; `GcellGrid` (router.h) maps chip space onto grid indices.

#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace ffet::geom {

template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(int cols, int rows, T init = T{})
      : cols_(cols), rows_(rows),
        data_(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows),
              init) {
    assert(cols >= 0 && rows >= 0);
  }

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  bool in_bounds(int c, int r) const {
    return c >= 0 && c < cols_ && r >= 0 && r < rows_;
  }

  T& at(int c, int r) {
    assert(in_bounds(c, r));
    return data_[index(c, r)];
  }
  const T& at(int c, int r) const {
    assert(in_bounds(c, r));
    return data_[index(c, r)];
  }

  /// Flat index for (c, r); useful as a node id in graph searches.
  std::size_t index(int c, int r) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c);
  }

  int col_of(std::size_t idx) const { return static_cast<int>(idx % cols_); }
  int row_of(std::size_t idx) const { return static_cast<int>(idx / cols_); }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  int cols_ = 0;
  int rows_ = 0;
  std::vector<T> data_;
};

}  // namespace ffet::geom
