#include "geom/geom.h"

#include <ostream>
#include <sstream>

namespace ffet::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << " .. " << r.hi << ']';
}

namespace {
std::string format_um(double v) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << v;
  return os.str();
}
}  // namespace

std::string to_string_um(const Point& p) {
  return "(" + format_um(to_um(p.x)) + ", " + format_um(to_um(p.y)) + ") um";
}

std::string to_string_um(const Rect& r) {
  return "[" + to_string_um(r.lo) + " .. " + to_string_um(r.hi) + "]";
}

}  // namespace ffet::geom
