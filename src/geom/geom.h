// geom.h — fundamental geometric types for the OpenFFET physical-design
// database.
//
// All on-chip geometry in this project is expressed in integer nanometers
// (`Nm`).  The virtual 5 nm PDK of the paper (Table II) has every pitch as an
// integral number of nanometers, so an integer database is exact: there is no
// accumulation of floating-point error across DEF round-trips or RC
// extraction, and equality comparisons are meaningful.
//
// Conventions:
//  * x grows to the right, y grows upward (standard DEF orientation).
//  * `Rect` is half-open in neither direction: it stores [lo, hi] corner
//    coordinates; width() == hi.x - lo.x.  A degenerate rect (zero width or
//    height) is valid and models a wire centerline segment.
//  * Areas are returned in double µm² (`area_um2`) because block areas exceed
//    the 64-bit nm² range only for dies > ~4 m on a side — safe — but µm² is
//    what every report in the paper uses.

#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ffet::geom {

/// Integer nanometer database unit.
using Nm = std::int64_t;

/// Nanometers per micron; used when converting to report units.
inline constexpr double kNmPerUm = 1000.0;

/// Convert a length in nanometers to microns.
constexpr double to_um(Nm v) { return static_cast<double>(v) / kNmPerUm; }

/// Convert a length in microns to the nearest nanometer.
constexpr Nm from_um(double um) {
  return static_cast<Nm>(um * kNmPerUm + (um >= 0 ? 0.5 : -0.5));
}

/// A 2-D point in database units.
struct Point {
  Nm x = 0;
  Nm y = 0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Manhattan distance between two points — the natural wirelength metric for
/// gridded BEOL routing.
constexpr Nm manhattan(const Point& a, const Point& b) {
  const Nm dx = a.x >= b.x ? a.x - b.x : b.x - a.x;
  const Nm dy = a.y >= b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// Axis-aligned rectangle, corners inclusive: lo <= hi in both axes for a
/// well-formed rect.  Default-constructed rect is the empty rect at origin.
struct Rect {
  Point lo;
  Point hi;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  constexpr Nm width() const { return hi.x - lo.x; }
  constexpr Nm height() const { return hi.y - lo.y; }
  constexpr bool well_formed() const { return lo.x <= hi.x && lo.y <= hi.y; }
  constexpr bool degenerate() const { return width() == 0 || height() == 0; }

  constexpr Point center() const {
    return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  }

  /// Area in µm².
  double area_um2() const { return to_um(width()) * to_um(height()); }

  constexpr bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  constexpr bool contains(const Rect& r) const {
    return contains(r.lo) && contains(r.hi);
  }

  /// Closed-interval overlap test; rects that merely touch DO intersect.
  constexpr bool intersects(const Rect& r) const {
    return lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y && r.lo.y <= hi.y;
  }

  /// Strict-interior overlap test; rects that only share an edge or corner do
  /// NOT overlap.  This is the correct test for placement legality, where
  /// abutting cells are legal.
  constexpr bool overlaps_interior(const Rect& r) const {
    return lo.x < r.hi.x && r.lo.x < hi.x && lo.y < r.hi.y && r.lo.y < hi.y;
  }

  /// Smallest rect containing both; if *this is empty-at-origin default, the
  /// caller should use `bbox_of` instead to avoid absorbing the origin.
  constexpr Rect united(const Rect& r) const {
    return {{std::min(lo.x, r.lo.x), std::min(lo.y, r.lo.y)},
            {std::max(hi.x, r.hi.x), std::max(hi.y, r.hi.y)}};
  }

  /// Intersection; result is well-formed only if intersects(r).
  constexpr Rect intersected(const Rect& r) const {
    return {{std::max(lo.x, r.lo.x), std::max(lo.y, r.lo.y)},
            {std::min(hi.x, r.hi.x), std::min(hi.y, r.hi.y)}};
  }

  constexpr Rect translated(const Point& d) const {
    return {lo + d, hi + d};
  }

  constexpr Rect inflated(Nm margin) const {
    return {{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }
};

/// Build a rect from an origin and a size.
constexpr Rect make_rect(Point origin, Nm w, Nm h) {
  return {origin, {origin.x + w, origin.y + h}};
}

/// 1-D closed interval on the integer line; used for track spans and row
/// occupancy bookkeeping.
struct Interval {
  Nm lo = 0;
  Nm hi = 0;

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
  friend constexpr auto operator<=>(const Interval&, const Interval&) = default;

  constexpr Nm length() const { return hi - lo; }
  constexpr bool well_formed() const { return lo <= hi; }
  constexpr bool contains(Nm v) const { return v >= lo && v <= hi; }
  constexpr bool intersects(const Interval& o) const {
    return lo <= o.hi && o.lo <= hi;
  }
  constexpr bool overlaps_interior(const Interval& o) const {
    return lo < o.hi && o.lo < hi;
  }
  constexpr Interval intersected(const Interval& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }
};

/// Orientation of a wire segment in gridded routing.
enum class Dir : std::uint8_t { Horizontal, Vertical };

constexpr Dir perpendicular(Dir d) {
  return d == Dir::Horizontal ? Dir::Vertical : Dir::Horizontal;
}

/// Snap `v` down to a multiple of `pitch` offset by `offset`.
constexpr Nm snap_down(Nm v, Nm pitch, Nm offset = 0) {
  const Nm rel = v - offset;
  Nm q = rel / pitch;
  if (rel % pitch != 0 && rel < 0) --q;
  return q * pitch + offset;
}

/// Snap `v` up to a multiple of `pitch` offset by `offset`.
constexpr Nm snap_up(Nm v, Nm pitch, Nm offset = 0) {
  const Nm down = snap_down(v, pitch, offset);
  return down == v ? v : down + pitch;
}

/// Number of track lines with the given pitch that fit strictly inside
/// [lo, hi] (inclusive of endpoints that land on a track).
constexpr int tracks_in_span(Nm lo, Nm hi, Nm pitch, Nm offset = 0) {
  if (hi < lo || pitch <= 0) return 0;
  const Nm first = snap_up(lo, pitch, offset);
  if (first > hi) return 0;
  return static_cast<int>((hi - first) / pitch) + 1;
}

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Human-readable "(x, y)" in µm with 3 decimals, for reports.
std::string to_string_um(const Point& p);
std::string to_string_um(const Rect& r);

}  // namespace ffet::geom
