#include "runtime/thread_pool.h"

#include <cstdlib>

#include "obs/obs.h"

namespace ffet::runtime {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FFET_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int workers) {
  if (workers > 0) ensure_workers(workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lk(m_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::ensure_workers(int count) {
  std::lock_guard<std::mutex> lk(m_);
  while (static_cast<int>(threads_.size()) < count) {
    const std::size_t index = threads_.size();
    slots_.push_back(std::make_unique<Slot>());
    threads_.emplace_back([this, index] { worker_loop(index); });
  }
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(m_);
    if (!slots_.empty()) {
      Slot& slot = *slots_[rr_++ % slots_.size()];
      slot.tasks.push_back(std::move(task));
      depth = slot.tasks.size();
      task = nullptr;
    }
  }
  FFET_METRIC_ADD("pool.submitted", 1);
  FFET_METRIC_GAUGE_MAX("pool.queue_depth.max", depth);
  if (task) {
    task();  // zero-worker pool: run inline
    return;
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (const auto& slot : slots_) {
      if (!slot->tasks.empty()) {
        task = std::move(slot->tasks.back());
        slot->tasks.pop_back();
        break;
      }
    }
  }
  if (!task) return false;
  {
    // A cooperative waiter lending its thread to the pool: show the task on
    // the caller's lane so borrowed time is attributed where it ran.
    FFET_TRACE_SCOPE("pool.task");
    FFET_METRIC_ADD("pool.tasks", 1);
    task();
  }
  return true;
}

std::function<void()> ThreadPool::take_locked(std::size_t home) {
  Slot& own = *slots_[home];
  if (!own.tasks.empty()) {
    std::function<void()> t = std::move(own.tasks.front());
    own.tasks.pop_front();
    return t;
  }
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    Slot& peer = *slots_[(home + i) % slots_.size()];
    if (!peer.tasks.empty()) {
      std::function<void()> t = std::move(peer.tasks.back());
      peer.tasks.pop_back();
      FFET_METRIC_ADD("pool.steals", 1);
      return t;
    }
  }
  return nullptr;
}

void ThreadPool::worker_loop(std::size_t index) {
  obs::set_thread_name("pool.worker." + std::to_string(index));
  std::unique_lock<std::mutex> lk(m_);
  while (true) {
    std::function<void()> task = take_locked(index);
    if (task) {
      lk.unlock();
      {
        FFET_TRACE_SCOPE("pool.task");
        FFET_METRIC_ADD("pool.tasks", 1);
        task();
      }
      task = nullptr;
      lk.lock();
      continue;
    }
    if (stop_) return;  // queues drained and shutdown requested
    cv_.wait(lk);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);  // grows on first parallel call
  return pool;
}

}  // namespace ffet::runtime
