// thread_pool.h — the parallel-execution runtime underneath the flow.
//
// A small work-stealing thread pool plus structured-parallelism primitives
// (`parallel_for`, `parallel_invoke`) built on C++17 threads only — no
// external dependencies.  Three properties shape the design:
//
//   * **Determinism by construction.**  The primitives never introduce
//     nondeterminism themselves: `parallel_for` partitions a fixed index
//     range; which thread runs which chunk varies, but callers that write
//     only to per-index slots (the rule everywhere in this repo) get
//     bit-identical results at any thread count.  `threads <= 1` executes
//     the plain serial loop — exactly today's code path.
//
//   * **Nesting without deadlock.**  A pool task may itself call
//     `parallel_for` (a sweep point routes its two wafer sides
//     concurrently).  Waiters are cooperative: while a `parallel_for`
//     caller waits for its helpers it executes other queued pool tasks, and
//     the caller always participates in its own index range, so progress is
//     guaranteed even when every worker is busy.
//
//   * **Exceptions propagate.**  The first exception thrown by any chunk is
//     captured, remaining chunks are abandoned, and the exception rethrows
//     on the calling thread once all helpers have stopped.
//
// Thread-count resolution (used by `flow::FlowConfig::threads` and the
// benches): an explicit positive request wins; otherwise the
// `FFET_THREADS` environment variable; otherwise
// `std::thread::hardware_concurrency()`.
//
// Telemetry (src/obs): each worker registers a named trace lane
// ("pool.worker.N") and every executed task is wrapped in a "pool.task"
// span, so an FFET_TRACE capture shows realized parallelism per lane.
// Metrics record submissions, executed tasks, steals, and the maximum
// queue depth; all of it is branch-on-atomic-flag and off by default.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ffet::runtime {

/// Effective thread count: `requested` if positive, else the FFET_THREADS
/// environment variable, else hardware_concurrency() (min 1).
int resolve_threads(int requested = 0);

/// Work-stealing pool: each worker owns a deque; submissions round-robin
/// across workers; an idle worker steals from the back of a peer's deque.
/// The pool grows on demand (`ensure_workers`) and never shrinks; the
/// destructor drains every queued task before joining.
class ThreadPool {
 public:
  /// Starts `workers` worker threads (0 = start none; grow on demand).
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const;

  /// Grow to at least `count` workers (no-op if already larger).
  void ensure_workers(int count);

  /// Enqueue a task.  With zero workers the task runs inline.  Tasks must
  /// not throw (parallel_for wraps user code; raw submissions are on the
  /// caller).
  void submit(std::function<void()> task);

  /// Run one queued task on the calling thread if any is available.
  /// Returns false when every deque is empty.  This is what lets waiting
  /// `parallel_for` callers help instead of blocking.
  bool try_run_one();

  /// The process-wide pool shared by flow sweeps and intra-flow stages.
  static ThreadPool& global();

 private:
  struct Slot {
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t index);
  /// Pop own front, else steal a peer's back.  Requires m_ held.
  std::function<void()> take_locked(std::size_t home);

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Slot>> slots_;  // stable across growth
  std::vector<std::thread> threads_;
  std::size_t rr_ = 0;  ///< round-robin submission cursor
  bool stop_ = false;
};

namespace detail {

/// Shared state of one parallel_for invocation.
struct ForState {
  std::atomic<std::size_t> next{0};  ///< next unclaimed chunk start
  std::atomic<int> helpers{0};       ///< submitted helper tasks still running
  std::atomic<bool> abort{false};
  std::mutex m;
  std::condition_variable done;
  std::exception_ptr error;  // first exception; guarded by m
};

}  // namespace detail

/// Run `body(i)` for every i in [0, n).  Chunks of `grain` indices are
/// claimed atomically by the caller and up to `threads - 1` pool helpers;
/// per-index work must only touch state owned by that index.  `threads <= 1`
/// (after resolve_threads) or `n <= grain` runs the plain serial loop.
/// `grain == 0` picks a chunk size targeting ~4 chunks per thread.
template <class F>
void parallel_for(std::size_t n, F&& body, int threads = 0,
                  std::size_t grain = 1) {
  if (n == 0) return;
  const int k = resolve_threads(threads);
  if (grain == 0) {
    grain = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(k) * 4));
  }
  if (k <= 1 || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<detail::ForState>();
  auto run_chunks = [state, n, grain, &body] {
    while (!state->abort.load(std::memory_order_relaxed)) {
      const std::size_t lo = state->next.fetch_add(grain);
      if (lo >= n) break;
      const std::size_t hi = std::min(n, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(state->m);
        if (!state->error) state->error = std::current_exception();
        state->abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  ThreadPool& pool = ThreadPool::global();
  const std::size_t chunks = (n + grain - 1) / grain;
  const int helpers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(k - 1), chunks - 1));
  pool.ensure_workers(helpers);
  state->helpers.store(helpers);
  for (int h = 0; h < helpers; ++h) {
    pool.submit([state, run_chunks] {
      run_chunks();
      if (state->helpers.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lk(state->m);
        state->done.notify_all();
      }
    });
  }

  run_chunks();  // the caller always works its own loop

  // Cooperative wait: execute other pool tasks (possibly a nested
  // parallel_for's helpers) until our helpers finish.
  while (state->helpers.load() > 0) {
    if (pool.try_run_one()) continue;
    std::unique_lock<std::mutex> lk(state->m);
    state->done.wait_for(lk, std::chrono::milliseconds(1),
                         [&] { return state->helpers.load() == 0; });
  }
  {
    std::lock_guard<std::mutex> lk(state->m);
    if (state->error) std::rethrow_exception(state->error);
  }
}

/// Run every callable concurrently; returns when all have finished.
/// `threads <= 1` runs them in argument order on the calling thread.
template <class... Fs>
void parallel_invoke(int threads, Fs&&... fs) {
  std::function<void()> fns[] = {std::function<void()>(std::forward<Fs>(fs))...};
  constexpr std::size_t n = sizeof...(Fs);
  parallel_for(n, [&](std::size_t i) { fns[i](); }, threads, 1);
}

}  // namespace ffet::runtime
