#include "sta/sta.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "stdcell/nldm.h"

namespace ffet::sta {

using netlist::InstId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;
using stdcell::PinDir;
using stdcell::TimingArc;
using stdcell::TimingModel;

namespace {

/// Slew degradation through an RC wire: combine the driver transition with
/// the wire's step response (PERI-style root-sum-square).
double degrade_slew(double slew_ps, double elmore_ps) {
  const double wire = 2.2 * elmore_ps;
  return std::sqrt(slew_ps * slew_ps + wire * wire);
}

}  // namespace

namespace {
/// Sentinel for "pin appears in no sink list"; lookups map it to 0, exactly
/// like the original linear search's not-found fallback.
constexpr std::size_t kNoSinkIndex = static_cast<std::size_t>(-1);

/// Topological position of instances outside the timing graph
/// (physical-only cells); they sort last in the incremental worklist and
/// propagate as no-ops.
constexpr int kNoTopoPos = INT_MAX;

double clock_latency_of(
    const std::unordered_map<InstId, double>* clock_latency_ps, InstId id) {
  if (!clock_latency_ps) return 0.0;
  const auto it = clock_latency_ps->find(id);
  return it == clock_latency_ps->end() ? 0.0 : it->second;
}

/// The (unique) output net of an instance, kNoNet if none is connected.
NetId output_net_of(const Netlist& nl, InstId id) {
  const netlist::Instance& inst = nl.instance(id);
  const auto pin_nets = nl.pin_nets(id);
  for (std::size_t p = 0; p < pin_nets.size(); ++p) {
    if (inst.type->pins()[p].dir == PinDir::Output) return pin_nets[p];
  }
  return netlist::kNoNet;
}

/// The "a -> b -> ..." path rendering shared by TimingReport::critical_path
/// and Sta::path_string — one formatter so the two stay bit-identical.
std::string format_path_names(const Netlist& nl,
                              const std::vector<InstId>& path) {
  std::string desc;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) desc += " -> ";
    nl.append_instance_name(desc, path[i]);
    if (desc.size() > 400) {
      desc += " ...";
      break;
    }
  }
  return desc;
}
}  // namespace

Sta::Sta(const Netlist* nl, const extract::RcNetlist* rc, StaOptions options)
    : nl_(nl), rc_(rc), opt_(options) {}

double Sta::compute_net_load_ff(NetId net) const {
  if (rc_) {
    return rc_->span_of(net).total_cap_ff;
  }
  const netlist::Net& n = nl_->net(net);
  double pins = 0.0;
  for (const PinRef& s : n.sinks) pins += nl_->pin_cap_ff(s);
  return pins + opt_.wl_base_ff +
         opt_.wl_per_fanout_ff * static_cast<double>(n.sinks.size());
}

double Sta::net_load_ff(NetId net) const {
  ensure_caches();
  return net_load_[static_cast<std::size_t>(net)];
}

std::size_t Sta::sink_index(InstId inst, std::size_t pin) const {
  const std::size_t idx = sink_index_[static_cast<std::size_t>(inst)][pin];
  return idx == kNoSinkIndex ? 0 : idx;
}

void Sta::ensure_caches() const {
  if (caches_built_) return;
  FFET_TRACE_SCOPE("sta.precompute");
  caches_built_ = true;
  const auto n_nets = static_cast<std::size_t>(nl_->num_nets());
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());

  net_load_.assign(n_nets, 0.0);
  runtime::parallel_for(
      n_nets,
      [&](std::size_t n) {
        net_load_[n] = compute_net_load_ff(static_cast<NetId>(n));
      },
      opt_.threads, 0);

  // Sink-index map: each (inst, pin) belongs to exactly one net's sink
  // list, so parallel per-net fills touch disjoint cells.
  sink_index_.resize(n_inst);
  for (std::size_t i = 0; i < n_inst; ++i) {
    sink_index_[i].assign(
        static_cast<std::size_t>(nl_->pin_count(static_cast<InstId>(i))),
        kNoSinkIndex);
  }
  runtime::parallel_for(
      n_nets,
      [&](std::size_t n) {
        const netlist::Net& net = nl_->net(static_cast<NetId>(n));
        for (std::size_t s = 0; s < net.sinks.size(); ++s) {
          const PinRef& ref = net.sinks[s];
          auto& cell =
              sink_index_[static_cast<std::size_t>(ref.inst)]
                         [static_cast<std::size_t>(ref.pin)];
          if (cell == kNoSinkIndex) cell = s;  // keep the first match
        }
      },
      opt_.threads, 0);
}

void Sta::refresh_caches_for(const std::vector<NetId>& nets) const {
  ensure_caches();
  // Structural growth/shrink: size the tables to the current netlist
  // (fresh entries are filled below from the dirty-net list).
  net_load_.resize(static_cast<std::size_t>(nl_->num_nets()), 0.0);
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());
  sink_index_.resize(n_inst);
  for (std::size_t i = 0; i < n_inst; ++i) {
    const std::size_t pins =
        static_cast<std::size_t>(nl_->pin_count(static_cast<InstId>(i)));
    if (sink_index_[i].size() != pins) {
      sink_index_[i].assign(pins, kNoSinkIndex);
    }
  }
  for (const NetId n : nets) {
    net_load_[static_cast<std::size_t>(n)] = compute_net_load_ff(n);
    // Re-derive the sink indices of this net's current sinks with the same
    // first-match semantics as the full build (reconnects shift the
    // indices of every later sink in the list).
    const netlist::Net& net = nl_->net(n);
    for (const PinRef& ref : net.sinks) {
      sink_index_[static_cast<std::size_t>(ref.inst)]
                 [static_cast<std::size_t>(ref.pin)] = kNoSinkIndex;
    }
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const PinRef& ref = net.sinks[s];
      auto& cell = sink_index_[static_cast<std::size_t>(ref.inst)]
                              [static_cast<std::size_t>(ref.pin)];
      if (cell == kNoSinkIndex) cell = s;  // keep the first match
    }
  }
}

double Sta::sink_wire_delay_ps(NetId net, std::size_t sink_idx) const {
  if (rc_) {
    return rc_->tree(net).elmore_to_sink(sink_idx);
  }
  // Wireload: lumped R times downstream cap.
  return 0.69 * opt_.wl_res_ohm * net_load_ff(net) / 1000.0;
}

void Sta::rebuild_topo() const {
  topo_order_ = nl_->topo_order();
  topo_pos_.assign(static_cast<std::size_t>(nl_->num_instances()),
                   kNoTopoPos);
  for (std::size_t k = 0; k < topo_order_.size(); ++k) {
    topo_pos_[static_cast<std::size_t>(topo_order_[k])] =
        static_cast<int>(k);
  }
}

void Sta::input_arrival_ps(NetId net_id, std::size_t sink_idx, double& arr,
                           double& slw, InstId& src) const {
  // SDC-style default input delay at PIs, referenced to the propagated
  // clock.
  arr = opt_.input_delay_ps + opt_.pi_reference_latency_ps;
  slw = opt_.input_slew_ps;
  src = netlist::kNoInst;
  const netlist::Net& net = nl_->net(net_id);
  if (net.driver.inst != netlist::kNoInst) {
    arr = arrival_[static_cast<std::size_t>(net.driver.inst)];
    slw = slew_[static_cast<std::size_t>(net.driver.inst)];
    src = net.driver.inst;
  }
  const double wire = sink_wire_delay_ps(net_id, sink_idx) * opt_.derate_late;
  arr += wire;
  slw = degrade_slew(slw, wire);
}

bool Sta::propagate_instance(
    InstId id, const std::unordered_map<InstId, double>* clock_latency_ps) {
  const netlist::Instance& inst = nl_->instance(id);
  const TimingModel* model = inst.type->timing_model();
  if (!model) return false;  // tie cells keep arrival 0

  const NetId out_net = output_net_of(*nl_, id);
  if (out_net == netlist::kNoNet) return false;
  const double load = net_load_ff(out_net);
  const auto sid = static_cast<std::size_t>(id);

  if (inst.type->sequential()) {
    // Launch: CP -> Q at the clock-insertion latency.
    const TimingArc* arc = model->arcs.empty() ? nullptr : &model->arcs[0];
    if (!arc) return false;
    const double clk_slew = 15.0;
    const double d = opt_.derate_late * 0.5 *
                     (arc->delay_rise.lookup(clk_slew, load) +
                      arc->delay_fall.lookup(clk_slew, load));
    const double arr = clock_latency_of(clock_latency_ps, id) + d;
    const double slw = 0.5 * (arc->trans_rise.lookup(clk_slew, load) +
                              arc->trans_fall.lookup(clk_slew, load));
    const bool changed = arr != arrival_[sid] || slw != slew_[sid];
    arrival_[sid] = arr;
    slew_[sid] = slw;
    return changed;
  }

  // Combinational: max over input arcs.
  double best = 0.0;
  double best_slew = opt_.input_slew_ps;
  InstId best_src = netlist::kNoInst;
  const auto pin_nets = nl_->pin_nets(id);
  for (std::size_t p = 0; p < pin_nets.size(); ++p) {
    const auto& pin = inst.type->pins()[p];
    if (pin.dir == PinDir::Output) continue;
    const NetId in_net = pin_nets[p];
    if (in_net == netlist::kNoNet) continue;
    // This pin's position in the net's sink list (for the Elmore lookup).
    const std::size_t sink_idx = sink_index(id, p);
    double arr, slw;
    InstId src;
    input_arrival_ps(in_net, sink_idx, arr, slw, src);
    const TimingArc* arc = model->arc_from(static_cast<int>(p));
    if (!arc) continue;
    const double d =
        opt_.derate_late * std::max(arc->delay_rise.lookup(slw, load),
                                    arc->delay_fall.lookup(slw, load));
    if (arr + d > best) {
      best = arr + d;
      best_slew = std::max(arc->trans_rise.lookup(slw, load),
                           arc->trans_fall.lookup(slw, load));
      best_src = src;
    }
  }
  const bool changed = best != arrival_[sid] || best_slew != slew_[sid];
  arrival_[sid] = best;
  slew_[sid] = best_slew;
  from_[sid] = best_src;
  return changed;
}

TimingReport Sta::build_report(
    const std::unordered_map<InstId, double>* clock_latency_ps) {
  TimingReport rep;

  // Worst output slew over the combinational instances that propagated
  // (same filter as the propagation loop; slew_ stores exactly the values
  // the full pass maximized over, so this scan is bit-identical to the
  // in-loop accumulation).
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    const TimingModel* model = inst.type->timing_model();
    if (!model || inst.type->sequential()) continue;
    if (output_net_of(*nl_, i) == netlist::kNoNet) continue;
    rep.max_slew_ps =
        std::max(rep.max_slew_ps, slew_[static_cast<std::size_t>(i)]);
  }

  // Endpoints: flip-flop D pins (setup) and primary outputs.
  double worst = 0.0;
  InstId worst_end = netlist::kNoInst;
  InstId worst_src = netlist::kNoInst;
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    if (!inst.type->sequential()) continue;
    const TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    const auto pin_nets = nl_->pin_nets(i);
    for (std::size_t p = 0; p < pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir != PinDir::Input || pin.name != "D") continue;
      const NetId net_id = pin_nets[p];
      if (net_id == netlist::kNoNet) continue;
      const std::size_t sink_idx = sink_index(i, p);
      double arr, slw;
      InstId src;
      input_arrival_ps(net_id, sink_idx, arr, slw, src);
      // Capture edge benefits from this FF's own insertion latency.
      const double path =
          arr + model->setup_ps - clock_latency_of(clock_latency_ps, i);
      if (path > worst) {
        worst = path;
        worst_end = i;
        worst_src = src;
      }
      ++rep.endpoints;
    }
  }
  for (const netlist::Port& port : nl_->ports()) {
    if (port.is_input || port.net == netlist::kNoNet) continue;
    const netlist::Net& net = nl_->net(port.net);
    if (net.driver.inst == netlist::kNoInst) continue;
    const double arr = arrival_[static_cast<std::size_t>(net.driver.inst)];
    if (arr > worst) {
      worst = arr;
      worst_end = net.driver.inst;
      worst_src = from_[static_cast<std::size_t>(net.driver.inst)];
    }
    ++rep.endpoints;
  }

  rep.critical_path_ps = worst + opt_.clock_skew_ps + opt_.uncertainty_ps;
  rep.achieved_freq_ghz =
      rep.critical_path_ps > 0 ? 1000.0 / rep.critical_path_ps : 0.0;

  // Reconstruct the critical path (endpoint backwards).
  critical_insts_.clear();
  for (InstId cur = worst_src; cur != netlist::kNoInst;
       cur = from_[static_cast<std::size_t>(cur)]) {
    critical_insts_.push_back(cur);
    if (critical_insts_.size() > 10000) break;  // safety
  }
  std::reverse(critical_insts_.begin(), critical_insts_.end());
  if (worst_end != netlist::kNoInst) critical_insts_.push_back(worst_end);
  rep.critical_path = format_path_names(*nl_, critical_insts_);
  return rep;
}

TimingReport Sta::analyze_timing(
    const std::unordered_map<InstId, double>* clock_latency_ps) {
  FFET_TRACE_SCOPE("sta.timing");
  ensure_caches();
  rebuild_topo();
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());
  arrival_.assign(n_inst, 0.0);
  slew_.assign(n_inst, opt_.input_slew_ps);
  from_.assign(n_inst, netlist::kNoInst);

  // Propagate in topological order.  topo_order() lists sequential
  // instances (sources) before the combinational cone they feed.
  for (InstId id : topo_order_) propagate_instance(id, clock_latency_ps);

  return build_report(clock_latency_ps);
}

TimingReport Sta::update_timing(
    const DirtySet& dirty,
    const std::unordered_map<InstId, double>* clock_latency_ps) {
  // No prior full analysis to update (or an unannounced structural
  // change) — fall back to the full pass.
  if (arrival_.empty() || topo_order_.empty() ||
      (!dirty.structure_changed &&
       arrival_.size() != static_cast<std::size_t>(nl_->num_instances()))) {
    return analyze_timing(clock_latency_ps);
  }
  FFET_TRACE_SCOPE("sta.update");
  if (dirty.structure_changed) {
    rebuild_topo();
    const auto n_inst = static_cast<std::size_t>(nl_->num_instances());
    arrival_.resize(n_inst, 0.0);
    slew_.resize(n_inst, opt_.input_slew_ps);
    from_.resize(n_inst, netlist::kNoInst);
  }
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());

  // Expand to the affected net set: the dirty nets plus every net touching
  // a dirty instance (its delay depends on the output load; its sinks see
  // new wire delays when it was resized/moved).
  std::vector<NetId> nets = dirty.nets;
  for (const InstId id : dirty.insts) {
    for (const NetId n : nl_->pin_nets(id)) {
      if (n != netlist::kNoNet) nets.push_back(n);
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  refresh_caches_for(nets);

  // Seeds: every instance whose own computation reads a dirty quantity —
  // drivers (output load changed) and sinks (wire delay changed) of the
  // affected nets, plus the dirty instances themselves.
  std::vector<InstId> seeds = dirty.insts;
  for (const NetId n : nets) {
    const netlist::Net& net = nl_->net(n);
    if (net.driver.inst != netlist::kNoInst) seeds.push_back(net.driver.inst);
    for (const PinRef& s : net.sinks) seeds.push_back(s.inst);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  // Levelized worklist: pop in topological position order, so every
  // instance is recomputed at most once and only after all its recomputed
  // predecessors — the per-instance arithmetic then sees exactly the same
  // inputs as a full pass.
  using Entry = std::pair<int, InstId>;  // (topo position, instance)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> work;
  std::vector<char> queued(n_inst, 0);
  std::vector<char> processed(n_inst, 0);
  for (const InstId id : seeds) {
    queued[static_cast<std::size_t>(id)] = 1;
    work.push({topo_pos_[static_cast<std::size_t>(id)], id});
  }

  long recomputed = 0;
  while (!work.empty()) {
    const auto [pos, id] = work.top();
    work.pop();
    const auto sid = static_cast<std::size_t>(id);
    if (processed[sid]) continue;
    processed[sid] = 1;
    ++recomputed;
    if (!propagate_instance(id, clock_latency_ps)) continue;
    // The stored (arrival, slew) changed: downstream combinational sinks
    // must recompute.  Sequential sinks are endpoints — their launch does
    // not depend on the D input, and the endpoint scan below re-reads the
    // new arrival directly.
    const NetId out_net = output_net_of(*nl_, id);
    if (out_net == netlist::kNoNet) continue;
    for (const PinRef& s : nl_->net(out_net).sinks) {
      const auto ss = static_cast<std::size_t>(s.inst);
      if (queued[ss] || nl_->instance(s.inst).type->sequential()) continue;
      queued[ss] = 1;
      work.push({topo_pos_[ss], s.inst});
    }
  }
  last_update_recomputed_ = recomputed;
  FFET_METRIC_ADD("sta.incremental_updates", 1);
  FFET_METRIC_ADD("sta.incremental_recomputed", recomputed);

  return build_report(clock_latency_ps);
}

std::vector<PathEnd> Sta::worst_paths(
    int k,
    const std::unordered_map<InstId, double>* clock_latency_ps) const {
  std::vector<PathEnd> ends;
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    if (!inst.type->sequential()) continue;
    const TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    const auto pin_nets = nl_->pin_nets(i);
    for (std::size_t p = 0; p < pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir != PinDir::Input || pin.name != "D") continue;
      const NetId net_id = pin_nets[p];
      if (net_id == netlist::kNoNet) continue;
      const std::size_t sink_idx = sink_index(i, p);
      double arr, slw;
      InstId src;
      input_arrival_ps(net_id, sink_idx, arr, slw, src);
      ends.push_back(
          {i, false,
           arr + model->setup_ps - clock_latency_of(clock_latency_ps, i)});
    }
  }
  for (const netlist::Port& port : nl_->ports()) {
    if (port.is_input || port.net == netlist::kNoNet) continue;
    const netlist::Net& net = nl_->net(port.net);
    if (net.driver.inst == netlist::kNoInst) continue;
    ends.push_back(
        {net.driver.inst, true,
         arrival_[static_cast<std::size_t>(net.driver.inst)]});
  }
  // Worst-first; ties resolve like the full scan's strict-greater
  // comparison: the endpoint visited first wins (FFs by id, then POs).
  std::sort(ends.begin(), ends.end(),
            [](const PathEnd& a, const PathEnd& b) {
              if (a.path_ps != b.path_ps) return a.path_ps > b.path_ps;
              if (a.is_port != b.is_port) return !a.is_port;
              return a.endpoint < b.endpoint;
            });
  if (k >= 0 && ends.size() > static_cast<std::size_t>(k)) {
    ends.resize(static_cast<std::size_t>(k));
  }
  return ends;
}

double Sta::endpoint_path_ps(
    InstId endpoint, bool is_port,
    const std::unordered_map<InstId, double>* clock_latency_ps) const {
  if (is_port) return arrival_[static_cast<std::size_t>(endpoint)];
  const netlist::Instance& inst = nl_->instance(endpoint);
  const TimingModel* model = inst.type->timing_model();
  if (!model) return 0.0;
  const auto pin_nets = nl_->pin_nets(endpoint);
  for (std::size_t p = 0; p < pin_nets.size(); ++p) {
    const auto& pin = inst.type->pins()[p];
    if (pin.dir != PinDir::Input || pin.name != "D") continue;
    const NetId net_id = pin_nets[p];
    if (net_id == netlist::kNoNet) continue;
    const std::size_t sink_idx = sink_index(endpoint, p);
    double arr, slw;
    InstId src;
    input_arrival_ps(net_id, sink_idx, arr, slw, src);
    return arr + model->setup_ps -
           clock_latency_of(clock_latency_ps, endpoint);
  }
  return 0.0;
}

std::vector<InstId> Sta::path_instances(const PathEnd& e) const {
  std::vector<InstId> path;
  InstId src = netlist::kNoInst;
  if (e.is_port) {
    src = from_[static_cast<std::size_t>(e.endpoint)];
  } else {
    const netlist::Instance& inst = nl_->instance(e.endpoint);
    const auto pin_nets = nl_->pin_nets(e.endpoint);
    for (std::size_t p = 0; p < pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir != PinDir::Input || pin.name != "D") continue;
      const NetId net_id = pin_nets[p];
      if (net_id == netlist::kNoNet) continue;
      src = nl_->net(net_id).driver.inst;
      break;
    }
  }
  for (InstId cur = src; cur != netlist::kNoInst;
       cur = from_[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
    if (path.size() > 10000) break;  // safety
  }
  std::reverse(path.begin(), path.end());
  path.push_back(e.endpoint);
  return path;
}

std::string Sta::path_string(const PathEnd& e) const {
  return format_path_names(*nl_, path_instances(e));
}

std::string Sta::endpoint_name(const PathEnd& e) const {
  if (!e.is_port) return nl_->instance_name(e.endpoint) + "/D";
  for (const netlist::Port& port : nl_->ports()) {
    if (port.is_input || port.net == netlist::kNoNet) continue;
    if (nl_->net(port.net).driver.inst == e.endpoint) {
      return "port:" + port.name;
    }
  }
  return nl_->instance_name(e.endpoint) + "/out";
}

int Sta::path_side_crossings(const PathEnd& e) const {
  const std::vector<InstId> path = path_instances(e);
  int crossings = 0;
  bool have_prev = false;
  stdcell::PinSide prev = stdcell::PinSide::Front;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NetId out = output_net_of(*nl_, path[i]);
    if (out == netlist::kNoNet) continue;
    const netlist::Instance& sink = nl_->instance(path[i + 1]);
    const auto sink_pins = nl_->pin_nets(path[i + 1]);
    for (std::size_t p = 0; p < sink_pins.size(); ++p) {
      if (sink_pins[p] != out) continue;
      if (sink.type->pins()[p].dir == PinDir::Output) continue;
      stdcell::PinSide s =
          nl_->pin_side({path[i + 1], static_cast<int>(p)});
      if (s == stdcell::PinSide::Both) s = stdcell::PinSide::Front;
      if (have_prev && s != prev) ++crossings;
      prev = s;
      have_prev = true;
      break;
    }
  }
  return crossings;
}

HoldReport Sta::analyze_hold(
    const std::unordered_map<InstId, double>* clock_latency_ps) {
  FFET_TRACE_SCOPE("sta.hold");
  ensure_caches();
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());
  std::vector<double> min_arrival(n_inst, 0.0);
  std::vector<double> min_slew(n_inst, opt_.input_slew_ps);

  auto clock_latency = [&](InstId id) {
    if (!clock_latency_ps) return 0.0;
    const auto it = clock_latency_ps->find(id);
    return it == clock_latency_ps->end() ? 0.0 : it->second;
  };

  for (InstId id : nl_->topo_order()) {
    const netlist::Instance& inst = nl_->instance(id);
    const stdcell::TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    const NetId out_net = output_net_of(*nl_, id);
    if (out_net == netlist::kNoNet) continue;
    const double load = net_load_ff(out_net);

    if (inst.type->sequential()) {
      const TimingArc* arc = model->arcs.empty() ? nullptr : &model->arcs[0];
      if (!arc) continue;
      const double d = opt_.derate_early *
                       std::min(arc->delay_rise.lookup(15.0, load),
                                arc->delay_fall.lookup(15.0, load));
      min_arrival[static_cast<std::size_t>(id)] = clock_latency(id) + d;
      min_slew[static_cast<std::size_t>(id)] =
          std::min(arc->trans_rise.lookup(15.0, load),
                   arc->trans_fall.lookup(15.0, load));
      continue;
    }

    double best = std::numeric_limits<double>::max();
    double best_slew = opt_.input_slew_ps;
    const auto pin_nets = nl_->pin_nets(id);
    for (std::size_t p = 0; p < pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir == PinDir::Output) continue;
      const NetId in_net = pin_nets[p];
      if (in_net == netlist::kNoNet) continue;
      const netlist::Net& net = nl_->net(in_net);
      const std::size_t sink_idx = sink_index(id, p);
      double arr = opt_.input_delay_ps + opt_.pi_reference_latency_ps;
      double slw = opt_.input_slew_ps;
      if (net.driver.inst != netlist::kNoInst) {
        arr = min_arrival[static_cast<std::size_t>(net.driver.inst)];
        slw = min_slew[static_cast<std::size_t>(net.driver.inst)];
      }
      const double wire =
          sink_wire_delay_ps(in_net, sink_idx) * opt_.derate_early;
      arr += wire;
      slw = degrade_slew(slw, wire);
      const TimingArc* arc = model->arc_from(static_cast<int>(p));
      if (!arc) continue;
      const double d = opt_.derate_early *
                       std::min(arc->delay_rise.lookup(slw, load),
                                arc->delay_fall.lookup(slw, load));
      if (arr + d < best) {
        best = arr + d;
        best_slew = std::min(arc->trans_rise.lookup(slw, load),
                             arc->trans_fall.lookup(slw, load));
      }
    }
    if (best == std::numeric_limits<double>::max()) best = 0.0;
    min_arrival[static_cast<std::size_t>(id)] = best;
    min_slew[static_cast<std::size_t>(id)] = best_slew;
  }

  HoldReport rep;
  rep.worst_slack_ps = std::numeric_limits<double>::max();
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    if (!inst.type->sequential()) continue;
    const stdcell::TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    const auto pin_nets = nl_->pin_nets(i);
    for (std::size_t p = 0; p < pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir != PinDir::Input || pin.name != "D") continue;
      const NetId net_id = pin_nets[p];
      if (net_id == netlist::kNoNet) continue;
      const netlist::Net& net = nl_->net(net_id);
      const std::size_t sink_idx = sink_index(i, p);
      double arr = opt_.input_delay_ps + opt_.pi_reference_latency_ps;
      if (net.driver.inst != netlist::kNoInst) {
        arr = min_arrival[static_cast<std::size_t>(net.driver.inst)];
      }
      arr += sink_wire_delay_ps(net_id, sink_idx) * opt_.derate_early;
      // Hold check at the same edge: data must stay stable past the
      // capture flop's hold window, which opens at its clock latency.
      const double skew =
          clock_latency_ps ? clock_latency(i) : opt_.clock_skew_ps;
      const double slack = arr - model->hold_ps - skew;
      if (slack < rep.worst_slack_ps) {
        rep.worst_slack_ps = slack;
        rep.worst_endpoint = nl_->instance_name(i) + "/D";
      }
      if (slack < 0.0) {
        ++rep.violations;
        rep.violating_endpoints.push_back({i, slack});
      }
    }
  }
  if (rep.worst_slack_ps == std::numeric_limits<double>::max()) {
    rep.worst_slack_ps = 0.0;
  }
  return rep;
}

PowerReport Sta::analyze_power(double freq_ghz,
                               const std::vector<double>* toggle_rates,
                               double default_toggle) const {
  FFET_TRACE_SCOPE("sta.power");
  PowerReport rep;
  rep.freq_ghz = freq_ghz;
  const double vdd = nl_->library().tech().device().vdd_v;

  auto toggle_of = [&](NetId n) {
    if (toggle_rates && static_cast<std::size_t>(n) < toggle_rates->size()) {
      return (*toggle_rates)[static_cast<std::size_t>(n)];
    }
    return nl_->net(n).is_clock ? 2.0 : default_toggle;
  };

  // Net switching power: alpha/2 * C * V^2 * f   (fF * V^2 * GHz = uW).
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const double cap = net_load_ff(n);
    rep.switching_uw += 0.5 * toggle_of(n) * cap * vdd * vdd * freq_ghz;
  }

  // Internal power: per-transition NLDM energy at each driver.
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    const TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    rep.leakage_uw += model->leakage_nw / 1000.0;
    if (model->arcs.empty()) continue;
    const NetId out_net = output_net_of(*nl_, i);
    if (out_net == netlist::kNoNet) continue;
    const double load = net_load_ff(out_net);
    const double slw =
        slew_.empty() ? opt_.input_slew_ps
                      : slew_[static_cast<std::size_t>(i)];
    const TimingArc& arc = model->arcs.front();
    const double e_avg = 0.5 * (arc.energy_rise.lookup(slw, load) +
                                arc.energy_fall.lookup(slw, load));
    // fJ per transition * transitions/cycle * GHz = uW.
    rep.internal_uw += e_avg * toggle_of(out_net) * freq_ghz;
  }
  return rep;
}

}  // namespace ffet::sta
