#include "sta/sta.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "stdcell/nldm.h"

namespace ffet::sta {

using netlist::InstId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;
using stdcell::PinDir;
using stdcell::TimingArc;
using stdcell::TimingModel;

namespace {

/// Slew degradation through an RC wire: combine the driver transition with
/// the wire's step response (PERI-style root-sum-square).
double degrade_slew(double slew_ps, double elmore_ps) {
  const double wire = 2.2 * elmore_ps;
  return std::sqrt(slew_ps * slew_ps + wire * wire);
}

}  // namespace

namespace {
/// Sentinel for "pin appears in no sink list"; lookups map it to 0, exactly
/// like the original linear search's not-found fallback.
constexpr std::size_t kNoSinkIndex = static_cast<std::size_t>(-1);
}  // namespace

Sta::Sta(const Netlist* nl, const extract::RcNetlist* rc, StaOptions options)
    : nl_(nl), rc_(rc), opt_(options) {}

double Sta::compute_net_load_ff(NetId net) const {
  if (rc_) {
    return rc_->trees[static_cast<std::size_t>(net)].total_cap_ff;
  }
  const netlist::Net& n = nl_->net(net);
  double pins = 0.0;
  for (const PinRef& s : n.sinks) pins += nl_->pin_cap_ff(s);
  return pins + opt_.wl_base_ff +
         opt_.wl_per_fanout_ff * static_cast<double>(n.sinks.size());
}

double Sta::net_load_ff(NetId net) const {
  ensure_caches();
  return net_load_[static_cast<std::size_t>(net)];
}

std::size_t Sta::sink_index(InstId inst, std::size_t pin) const {
  const std::size_t idx = sink_index_[static_cast<std::size_t>(inst)][pin];
  return idx == kNoSinkIndex ? 0 : idx;
}

void Sta::ensure_caches() const {
  if (caches_built_) return;
  FFET_TRACE_SCOPE("sta.precompute");
  caches_built_ = true;
  const auto n_nets = static_cast<std::size_t>(nl_->num_nets());
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());

  net_load_.assign(n_nets, 0.0);
  runtime::parallel_for(
      n_nets,
      [&](std::size_t n) {
        net_load_[n] = compute_net_load_ff(static_cast<NetId>(n));
      },
      opt_.threads, 0);

  // Sink-index map: each (inst, pin) belongs to exactly one net's sink
  // list, so parallel per-net fills touch disjoint cells.
  sink_index_.resize(n_inst);
  for (std::size_t i = 0; i < n_inst; ++i) {
    sink_index_[i].assign(nl_->instance(static_cast<InstId>(i)).pin_nets.size(),
                          kNoSinkIndex);
  }
  runtime::parallel_for(
      n_nets,
      [&](std::size_t n) {
        const netlist::Net& net = nl_->net(static_cast<NetId>(n));
        for (std::size_t s = 0; s < net.sinks.size(); ++s) {
          const PinRef& ref = net.sinks[s];
          auto& cell =
              sink_index_[static_cast<std::size_t>(ref.inst)]
                         [static_cast<std::size_t>(ref.pin)];
          if (cell == kNoSinkIndex) cell = s;  // keep the first match
        }
      },
      opt_.threads, 0);
}

double Sta::sink_wire_delay_ps(NetId net, std::size_t sink_idx) const {
  if (rc_) {
    return rc_->trees[static_cast<std::size_t>(net)].elmore_to_sink(sink_idx);
  }
  // Wireload: lumped R times downstream cap.
  return 0.69 * opt_.wl_res_ohm * net_load_ff(net) / 1000.0;
}

TimingReport Sta::analyze_timing(
    const std::unordered_map<InstId, double>* clock_latency_ps) {
  FFET_TRACE_SCOPE("sta.timing");
  ensure_caches();
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());
  arrival_.assign(n_inst, 0.0);
  slew_.assign(n_inst, opt_.input_slew_ps);
  std::vector<InstId> from(n_inst, netlist::kNoInst);

  TimingReport rep;

  auto clock_latency = [&](InstId id) {
    if (!clock_latency_ps) return 0.0;
    const auto it = clock_latency_ps->find(id);
    return it == clock_latency_ps->end() ? 0.0 : it->second;
  };

  // Arrival and slew at an instance *input pin*.
  auto input_arrival = [&](const netlist::Net& net, std::size_t sink_idx,
                           double& arr, double& slw,
                           InstId& src) {
    // SDC-style default input delay at PIs, referenced to the propagated
    // clock.
    arr = opt_.input_delay_ps + opt_.pi_reference_latency_ps;
    slw = opt_.input_slew_ps;
    src = netlist::kNoInst;
    const NetId net_id = [&] {
      // Recover net id from the sink's pin binding.
      const PinRef& ref = net.sinks[sink_idx];
      return nl_->instance(ref.inst)
          .pin_nets[static_cast<std::size_t>(ref.pin)];
    }();
    if (net.driver.inst != netlist::kNoInst) {
      arr = arrival_[static_cast<std::size_t>(net.driver.inst)];
      slw = slew_[static_cast<std::size_t>(net.driver.inst)];
      src = net.driver.inst;
    }
    const double wire =
        sink_wire_delay_ps(net_id, sink_idx) * opt_.derate_late;
    arr += wire;
    slw = degrade_slew(slw, wire);
  };

  // Propagate in topological order.  topo_order() lists sequential
  // instances (sources) before the combinational cone they feed.
  for (InstId id : nl_->topo_order()) {
    const netlist::Instance& inst = nl_->instance(id);
    const TimingModel* model = inst.type->timing_model();
    if (!model) continue;  // tie cells keep arrival 0

    // Output net load.
    NetId out_net = netlist::kNoNet;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      if (inst.type->pins()[p].dir == PinDir::Output) {
        out_net = inst.pin_nets[p];
        break;
      }
    }
    if (out_net == netlist::kNoNet) continue;
    const double load = net_load_ff(out_net);

    if (inst.type->sequential()) {
      // Launch: CP -> Q at the clock-insertion latency.
      const TimingArc* arc = model->arcs.empty() ? nullptr : &model->arcs[0];
      if (!arc) continue;
      const double clk_slew = 15.0;
      const double d = opt_.derate_late * 0.5 *
                       (arc->delay_rise.lookup(clk_slew, load) +
                        arc->delay_fall.lookup(clk_slew, load));
      arrival_[static_cast<std::size_t>(id)] = clock_latency(id) + d;
      slew_[static_cast<std::size_t>(id)] =
          0.5 * (arc->trans_rise.lookup(clk_slew, load) +
                 arc->trans_fall.lookup(clk_slew, load));
      continue;
    }

    // Combinational: max over input arcs.
    double best = 0.0;
    double best_slew = opt_.input_slew_ps;
    InstId best_src = netlist::kNoInst;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir == PinDir::Output) continue;
      const NetId in_net = inst.pin_nets[p];
      if (in_net == netlist::kNoNet) continue;
      const netlist::Net& net = nl_->net(in_net);
      // This pin's position in the net's sink list (for the Elmore lookup).
      const std::size_t sink_idx = sink_index(id, p);
      double arr, slw;
      InstId src;
      input_arrival(net, sink_idx, arr, slw, src);
      const TimingArc* arc = model->arc_from(static_cast<int>(p));
      if (!arc) continue;
      const double d =
          opt_.derate_late * std::max(arc->delay_rise.lookup(slw, load),
                                      arc->delay_fall.lookup(slw, load));
      if (arr + d > best) {
        best = arr + d;
        best_slew = std::max(arc->trans_rise.lookup(slw, load),
                             arc->trans_fall.lookup(slw, load));
        best_src = src;
      }
    }
    arrival_[static_cast<std::size_t>(id)] = best;
    slew_[static_cast<std::size_t>(id)] = best_slew;
    from[static_cast<std::size_t>(id)] = best_src;
    rep.max_slew_ps = std::max(rep.max_slew_ps, best_slew);
  }

  // Endpoints: flip-flop D pins (setup) and primary outputs.
  double worst = 0.0;
  InstId worst_end = netlist::kNoInst;
  InstId worst_src = netlist::kNoInst;
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    if (!inst.type->sequential()) continue;
    const TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir != PinDir::Input || pin.name != "D") continue;
      const NetId net_id = inst.pin_nets[p];
      if (net_id == netlist::kNoNet) continue;
      const netlist::Net& net = nl_->net(net_id);
      const std::size_t sink_idx = sink_index(i, p);
      double arr, slw;
      InstId src;
      input_arrival(net, sink_idx, arr, slw, src);
      // Capture edge benefits from this FF's own insertion latency.
      const double path =
          arr + model->setup_ps - clock_latency(i);
      if (path > worst) {
        worst = path;
        worst_end = i;
        worst_src = src;
      }
      ++rep.endpoints;
    }
  }
  for (const netlist::Port& port : nl_->ports()) {
    if (port.is_input || port.net == netlist::kNoNet) continue;
    const netlist::Net& net = nl_->net(port.net);
    if (net.driver.inst == netlist::kNoInst) continue;
    const double arr = arrival_[static_cast<std::size_t>(net.driver.inst)];
    if (arr > worst) {
      worst = arr;
      worst_end = net.driver.inst;
      worst_src = from[static_cast<std::size_t>(net.driver.inst)];
    }
    ++rep.endpoints;
  }

  rep.critical_path_ps = worst + opt_.clock_skew_ps + opt_.uncertainty_ps;
  rep.achieved_freq_ghz =
      rep.critical_path_ps > 0 ? 1000.0 / rep.critical_path_ps : 0.0;

  // Reconstruct the critical path (endpoint backwards).
  critical_insts_.clear();
  for (InstId cur = worst_src; cur != netlist::kNoInst;
       cur = from[static_cast<std::size_t>(cur)]) {
    critical_insts_.push_back(cur);
    if (critical_insts_.size() > 10000) break;  // safety
  }
  std::reverse(critical_insts_.begin(), critical_insts_.end());
  if (worst_end != netlist::kNoInst) critical_insts_.push_back(worst_end);
  std::string desc;
  for (std::size_t i = 0; i < critical_insts_.size(); ++i) {
    if (i) desc += " -> ";
    desc += nl_->instance(critical_insts_[i]).name;
    if (desc.size() > 400) {
      desc += " ...";
      break;
    }
  }
  rep.critical_path = desc;
  return rep;
}

HoldReport Sta::analyze_hold(
    const std::unordered_map<InstId, double>* clock_latency_ps) {
  FFET_TRACE_SCOPE("sta.hold");
  ensure_caches();
  const auto n_inst = static_cast<std::size_t>(nl_->num_instances());
  std::vector<double> min_arrival(n_inst, 0.0);
  std::vector<double> min_slew(n_inst, opt_.input_slew_ps);

  auto clock_latency = [&](InstId id) {
    if (!clock_latency_ps) return 0.0;
    const auto it = clock_latency_ps->find(id);
    return it == clock_latency_ps->end() ? 0.0 : it->second;
  };

  for (InstId id : nl_->topo_order()) {
    const netlist::Instance& inst = nl_->instance(id);
    const stdcell::TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    NetId out_net = netlist::kNoNet;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      if (inst.type->pins()[p].dir == PinDir::Output) {
        out_net = inst.pin_nets[p];
        break;
      }
    }
    if (out_net == netlist::kNoNet) continue;
    const double load = net_load_ff(out_net);

    if (inst.type->sequential()) {
      const TimingArc* arc = model->arcs.empty() ? nullptr : &model->arcs[0];
      if (!arc) continue;
      const double d = opt_.derate_early *
                       std::min(arc->delay_rise.lookup(15.0, load),
                                arc->delay_fall.lookup(15.0, load));
      min_arrival[static_cast<std::size_t>(id)] = clock_latency(id) + d;
      min_slew[static_cast<std::size_t>(id)] =
          std::min(arc->trans_rise.lookup(15.0, load),
                   arc->trans_fall.lookup(15.0, load));
      continue;
    }

    double best = std::numeric_limits<double>::max();
    double best_slew = opt_.input_slew_ps;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir == PinDir::Output) continue;
      const NetId in_net = inst.pin_nets[p];
      if (in_net == netlist::kNoNet) continue;
      const netlist::Net& net = nl_->net(in_net);
      const std::size_t sink_idx = sink_index(id, p);
      double arr = opt_.input_delay_ps + opt_.pi_reference_latency_ps;
      double slw = opt_.input_slew_ps;
      if (net.driver.inst != netlist::kNoInst) {
        arr = min_arrival[static_cast<std::size_t>(net.driver.inst)];
        slw = min_slew[static_cast<std::size_t>(net.driver.inst)];
      }
      const double wire =
          sink_wire_delay_ps(in_net, sink_idx) * opt_.derate_early;
      arr += wire;
      slw = degrade_slew(slw, wire);
      const TimingArc* arc = model->arc_from(static_cast<int>(p));
      if (!arc) continue;
      const double d = opt_.derate_early *
                       std::min(arc->delay_rise.lookup(slw, load),
                                arc->delay_fall.lookup(slw, load));
      if (arr + d < best) {
        best = arr + d;
        best_slew = std::min(arc->trans_rise.lookup(slw, load),
                             arc->trans_fall.lookup(slw, load));
      }
    }
    if (best == std::numeric_limits<double>::max()) best = 0.0;
    min_arrival[static_cast<std::size_t>(id)] = best;
    min_slew[static_cast<std::size_t>(id)] = best_slew;
  }

  HoldReport rep;
  rep.worst_slack_ps = std::numeric_limits<double>::max();
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    if (!inst.type->sequential()) continue;
    const stdcell::TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir != PinDir::Input || pin.name != "D") continue;
      const NetId net_id = inst.pin_nets[p];
      if (net_id == netlist::kNoNet) continue;
      const netlist::Net& net = nl_->net(net_id);
      const std::size_t sink_idx = sink_index(i, p);
      double arr = opt_.input_delay_ps + opt_.pi_reference_latency_ps;
      if (net.driver.inst != netlist::kNoInst) {
        arr = min_arrival[static_cast<std::size_t>(net.driver.inst)];
      }
      arr += sink_wire_delay_ps(net_id, sink_idx) * opt_.derate_early;
      // Hold check at the same edge: data must stay stable past the
      // capture flop's hold window, which opens at its clock latency.
      const double skew =
          clock_latency_ps ? clock_latency(i) : opt_.clock_skew_ps;
      const double slack = arr - model->hold_ps - skew;
      if (slack < rep.worst_slack_ps) {
        rep.worst_slack_ps = slack;
        rep.worst_endpoint = inst.name + "/D";
      }
      if (slack < 0.0) {
        ++rep.violations;
        rep.violating_endpoints.push_back({i, slack});
      }
    }
  }
  if (rep.worst_slack_ps == std::numeric_limits<double>::max()) {
    rep.worst_slack_ps = 0.0;
  }
  return rep;
}

PowerReport Sta::analyze_power(double freq_ghz,
                               const std::vector<double>* toggle_rates,
                               double default_toggle) const {
  FFET_TRACE_SCOPE("sta.power");
  PowerReport rep;
  rep.freq_ghz = freq_ghz;
  const double vdd = nl_->library().tech().device().vdd_v;

  auto toggle_of = [&](NetId n) {
    if (toggle_rates && static_cast<std::size_t>(n) < toggle_rates->size()) {
      return (*toggle_rates)[static_cast<std::size_t>(n)];
    }
    return nl_->net(n).is_clock ? 2.0 : default_toggle;
  };

  // Net switching power: alpha/2 * C * V^2 * f   (fF * V^2 * GHz = uW).
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const double cap = net_load_ff(n);
    rep.switching_uw += 0.5 * toggle_of(n) * cap * vdd * vdd * freq_ghz;
  }

  // Internal power: per-transition NLDM energy at each driver.
  for (int i = 0; i < nl_->num_instances(); ++i) {
    const netlist::Instance& inst = nl_->instance(i);
    const TimingModel* model = inst.type->timing_model();
    if (!model) continue;
    rep.leakage_uw += model->leakage_nw / 1000.0;
    if (model->arcs.empty()) continue;
    NetId out_net = netlist::kNoNet;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      if (inst.type->pins()[p].dir == PinDir::Output) {
        out_net = inst.pin_nets[p];
        break;
      }
    }
    if (out_net == netlist::kNoNet) continue;
    const double load = net_load_ff(out_net);
    const double slw =
        slew_.empty() ? opt_.input_slew_ps
                      : slew_[static_cast<std::size_t>(i)];
    const TimingArc& arc = model->arcs.front();
    const double e_avg = 0.5 * (arc.energy_rise.lookup(slw, load) +
                                arc.energy_fall.lookup(slw, load));
    // fJ per transition * transitions/cycle * GHz = uW.
    rep.internal_uw += e_avg * toggle_of(out_net) * freq_ghz;
  }
  return rep;
}

}  // namespace ffet::sta
