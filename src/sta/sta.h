// sta.h — graph-based static timing analysis and power analysis.
//
// Standard NLDM STA: instances are levelized topologically; arrival times
// and transitions propagate through cell arcs (bilinear NLDM lookups) and
// wire RC (Elmore delay from the extractor, with slew degradation).
// Sequential elements launch at their clock-insertion latency (from CTS)
// and capture with setup at the next edge.  The achieved frequency is the
// reciprocal of the worst launch→capture path — the number the paper's
// power-frequency plots report on the y/x axes.
//
// Power (the paper's "power" KPI) combines:
//   * net switching power     alpha/2 * C_net * VDD^2 * f
//   * cell internal power     per-transition NLDM energy * alpha * f
//   * leakage                 per-cell static leakage
// with per-net toggle rates taken from gate-level simulation when
// available (the RV32 harness) or a default activity factor otherwise.
//
// When no extraction is available (pre-placement synthesis timing), a
// fanout-based wireload model stands in for the RC trees.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "extract/extract.h"
#include "netlist/netlist.h"

namespace ffet::sta {

struct StaOptions {
  /// Clock skew folded into every setup check (from CTS).
  double clock_skew_ps = 0.0;
  /// Input slew assumed at primary inputs.
  double input_slew_ps = 20.0;
  /// Default arrival time at primary inputs (an SDC-style input delay);
  /// keeps PI-fed flip-flops from reporting spurious hold violations.
  double input_delay_ps = 10.0;
  /// Propagated-clock reference for primary inputs: external data is
  /// launched by the same clock the capture flops receive through the
  /// tree, so PI arrivals shift by the mean network latency.  The flow
  /// sets this to the CTS mean insertion delay.
  double pi_reference_latency_ps = 0.0;
  /// Extra margin on the critical path (clock uncertainty).
  double uncertainty_ps = 5.0;
  /// Corner derates: max-delay (setup) analysis scales all cell and wire
  /// delays by derate_late; min-delay (hold) by derate_early.  (1.0, 1.0)
  /// is the typical corner; a classic signoff pair is (1.12, 0.88).
  double derate_late = 1.0;
  double derate_early = 1.0;
  /// Wireload model (used only when no RcNetlist is supplied):
  /// C = wl_base_ff + wl_per_fanout_ff * fanout.
  double wl_base_ff = 0.3;
  double wl_per_fanout_ff = 0.35;
  double wl_res_ohm = 120.0;  ///< lumped wire resistance for wireload mode
  /// Worker threads for the per-net precomputation (net loads and
  /// sink-index maps).  The topological arrival propagation itself is
  /// inherently serial; the precomputed tables are pure per-net functions,
  /// so results are bit-identical at any thread count.
  int threads = 1;
};

struct TimingReport {
  double critical_path_ps = 0.0;  ///< data path + setup + skew + uncertainty
  double achieved_freq_ghz = 0.0;
  double max_slew_ps = 0.0;
  std::string critical_path;      ///< "ffA/Q -> u1/ZN -> ... -> ffB/D"
  int endpoints = 0;

  double slack_ps(double target_period_ps) const {
    return target_period_ps - critical_path_ps;
  }
};

/// Netlist elements whose timing-relevant state changed since the last
/// analysis: nets whose parasitics / load / sink list changed, and
/// instances whose cell master (or clock latency) changed.  Set
/// `structure_changed` whenever instances or nets were added or removed —
/// the incremental update then re-derives the topological order; otherwise
/// the cached order from the previous analysis is reused.
struct DirtySet {
  std::vector<netlist::NetId> nets;
  std::vector<netlist::InstId> insts;
  bool structure_changed = false;
};

/// One timing endpoint — a flip-flop D pin or a primary output — with its
/// unconstrained path delay (the quantity analyze_timing maximizes before
/// adding the skew/uncertainty margins).
struct PathEnd {
  netlist::InstId endpoint = netlist::kNoInst;  ///< FF, or the PO's driver
  bool is_port = false;                         ///< primary-output endpoint
  double path_ps = 0.0;  ///< FF: arrival + setup − capture latency; PO: arrival
};

/// Min-delay (hold) analysis result.
struct HoldReport {
  double worst_slack_ps = 0.0;  ///< min over endpoints of (min arrival −
                                ///< hold − skew); negative = violation
  int violations = 0;
  std::string worst_endpoint;
  /// Every violating flip-flop with its slack (for hold fixing).
  std::vector<std::pair<netlist::InstId, double>> violating_endpoints;
};

struct PowerReport {
  double switching_uw = 0.0;
  double internal_uw = 0.0;
  double leakage_uw = 0.0;
  double freq_ghz = 0.0;
  double total_uw() const { return switching_uw + internal_uw + leakage_uw; }
  /// Power efficiency in GHz/mW — Fig. 13's metric.
  double efficiency_ghz_per_mw() const {
    const double mw = total_uw() / 1000.0;
    return mw > 0 ? freq_ghz / mw : 0.0;
  }
};

class Sta {
 public:
  /// `rc` may be null: synthesis-time analysis then uses the wireload
  /// model.  `clock_latency_ps` (per sequential InstId, from CTS) may be
  /// null for an ideal clock.
  Sta(const netlist::Netlist* nl, const extract::RcNetlist* rc,
      StaOptions options = {});

  /// Full arrival propagation; fills per-instance arrival/slew tables.
  TimingReport analyze_timing(
      const std::unordered_map<netlist::InstId, double>* clock_latency_ps =
          nullptr);

  /// Incremental re-analysis after a full analyze_timing(): re-propagates
  /// arrivals and slews only through the downstream cone of the dirty
  /// elements (levelized worklist ordered by cached topological position;
  /// propagation stops where recomputed values are bitwise unchanged).
  /// The returned report — and the arrival/slew tables — are bit-identical
  /// to a fresh full analyze_timing() on the current netlist state.  With
  /// `dirty.structure_changed` the topological order is rebuilt and the
  /// per-instance tables are resized; newly added nets/instances must then
  /// be listed in the dirty set.  Falls back to a full analysis when no
  /// prior one exists.  Serial and deterministic at any `threads` setting.
  TimingReport update_timing(
      const DirtySet& dirty,
      const std::unordered_map<netlist::InstId, double>* clock_latency_ps =
          nullptr);

  /// The `k` worst endpoints by unconstrained path delay, valid after an
  /// analysis.  Ordered worst-first; ties resolve exactly like the full
  /// scan (flip-flop endpoints before primary outputs, then by id), so the
  /// first entry is always the endpoint of `critical_path`.
  std::vector<PathEnd> worst_paths(
      int k, const std::unordered_map<netlist::InstId, double>*
                 clock_latency_ps = nullptr) const;

  /// Current unconstrained path delay of one endpoint (same arithmetic as
  /// the full endpoint scan); valid after an analysis.
  double endpoint_path_ps(
      netlist::InstId endpoint, bool is_port,
      const std::unordered_map<netlist::InstId, double>* clock_latency_ps =
          nullptr) const;

  /// Slack of an endpoint at `target_period_ps`, including the same
  /// skew + uncertainty margins folded into `critical_path_ps`.
  double endpoint_slack_ps(const PathEnd& e, double target_period_ps) const {
    return target_period_ps -
           (e.path_ps + opt_.clock_skew_ps + opt_.uncertainty_ps);
  }

  /// Instances on the path into endpoint `e`, driver-first, ending with
  /// the endpoint itself (launch FF, combinational cone, capture FF / PO
  /// driver).  Valid after an analysis.
  std::vector<netlist::InstId> path_instances(const PathEnd& e) const;

  /// The path into `e` rendered exactly like `TimingReport::critical_path`
  /// ("a -> b -> ...", truncated past 400 characters with " ...").  For the
  /// worst endpoint of the last analysis the returned bytes are identical
  /// to the report's string (both go through the same formatter).
  std::string path_string(const PathEnd& e) const;

  /// Human-readable endpoint name: "inst/D" for a flip-flop D pin,
  /// "port:NAME" for a primary output ("inst/out" if the port lookup
  /// fails — e.g. the driver feeds several ports and the first wins).
  std::string endpoint_name(const PathEnd& e) const;

  /// Front<->back wafer crossings along the data path into `e`: the number
  /// of consecutive hop pairs whose sink input pins sit on different wafer
  /// sides.  Each change of side passes through the driving cell's
  /// dual-sided Drain-Merge output pin — the only structure crossing the
  /// wafer (Sec. III.C).  Dual-sided (Both) input pins count as frontside.
  int path_side_crossings(const PathEnd& e) const;

  /// Instances recomputed by the last update_timing() (worklist pops) —
  /// the incremental-STA effort metric benches and telemetry report.
  long last_update_recomputed() const { return last_update_recomputed_; }

  /// Min-delay propagation and hold checks at every flip-flop D pin.
  /// Fast paths launched and captured by the same edge must exceed the
  /// capture flop's hold requirement plus the clock skew between the two
  /// flops (approximated by `StaOptions::clock_skew_ps` when no per-sink
  /// latency map is given).
  HoldReport analyze_hold(
      const std::unordered_map<netlist::InstId, double>* clock_latency_ps =
          nullptr);

  /// Power at `freq_ghz` with per-net toggle rates (toggles per cycle,
  /// indexed by NetId); null uses `default_toggle` for data nets and 2.0
  /// for clock nets.
  PowerReport analyze_power(double freq_ghz,
                            const std::vector<double>* toggle_rates = nullptr,
                            double default_toggle = 0.15) const;

  /// Per-instance worst output arrival (ps), valid after analyze_timing.
  const std::vector<double>& arrival_ps() const { return arrival_; }
  /// Per-instance worst output slew (ps), valid after analyze_timing.
  const std::vector<double>& slew_ps() const { return slew_; }
  /// Instances on the critical path, driver-first (for synthesis sizing).
  const std::vector<netlist::InstId>& critical_instances() const {
    return critical_insts_;
  }

 private:
  double net_load_ff(netlist::NetId net) const;
  double compute_net_load_ff(netlist::NetId net) const;
  double sink_wire_delay_ps(netlist::NetId net, std::size_t sink_idx) const;
  /// Cached position of (inst, pin) in its net's sink list (0 if absent —
  /// the same fallback the original linear search used).
  std::size_t sink_index(netlist::InstId inst, std::size_t pin) const;
  /// Build the per-net load and sink-index caches (parallel_for over nets;
  /// lazy, built on first analysis).
  void ensure_caches() const;
  /// Resize the lazy caches to the current netlist and recompute the
  /// entries of `nets` (update_timing support).
  void refresh_caches_for(const std::vector<netlist::NetId>& nets) const;
  /// Rebuild topo_order_/topo_pos_ from the current netlist.
  void rebuild_topo() const;
  /// Arrival and slew at an instance input pin fed by `net_id`.
  void input_arrival_ps(netlist::NetId net_id, std::size_t sink_idx,
                        double& arr, double& slw, netlist::InstId& src) const;
  /// Recompute one instance's arrival/slew/from from its current inputs
  /// (the shared body of the full and incremental analyses).  Returns true
  /// when the stored (arrival, slew) pair changed bitwise.
  bool propagate_instance(
      netlist::InstId id,
      const std::unordered_map<netlist::InstId, double>* clock_latency_ps);
  /// Endpoint scan + critical-path reconstruction + max-slew scan over the
  /// current arrival/slew tables (shared by full and incremental paths).
  TimingReport build_report(
      const std::unordered_map<netlist::InstId, double>* clock_latency_ps);

  const netlist::Netlist* nl_;
  const extract::RcNetlist* rc_;
  StaOptions opt_;
  std::vector<double> arrival_;
  std::vector<double> slew_;
  std::vector<netlist::InstId> from_;  ///< per-instance worst-arc source
  std::vector<netlist::InstId> critical_insts_;
  long last_update_recomputed_ = 0;

  mutable bool caches_built_ = false;
  mutable std::vector<double> net_load_;  ///< per-net driver load (fF)
  /// Per-instance, per-pin sink index (kNoSinkIndex = pin not in any sink
  /// list; reads map it to 0).
  mutable std::vector<std::vector<std::size_t>> sink_index_;
  /// Topological order cached by the last analysis (update_timing reuses
  /// it; rebuilt on structure changes).  topo_pos_ maps InstId → position
  /// (kNoTopoPos for instances outside the timing graph).
  mutable std::vector<netlist::InstId> topo_order_;
  mutable std::vector<int> topo_pos_;
};

}  // namespace ffet::sta
