#!/bin/sh
# Regenerate every paper table/figure plus the extensions; used to produce
# bench_output.txt referenced by EXPERIMENTS.md.
#
# Usage:
#   ./run_benches.sh                  # full set
#   ./run_benches.sh --quick          # fast smoke subset (CI)
#   ./run_benches.sh --trace          # also capture per-bench Chrome traces
#   ./run_benches.sh --serve          # sweep-service smoke: Fig. 8 --quick
#                                     # through a local ffet_serve daemon,
#                                     # gated on QoR identity + cache hits
#   ./run_benches.sh bench_fig10 ...  # only the named benches (unknown
#                                     # names are an error, not a skip)
#
# Wall-clock timing of every sweep bench is collected (via the
# FFET_BENCH_JSON hook in bench_common.h) into BENCH_sweeps.json; the lines
# include per-point min/mean/max and per-stage wall-time breakdowns.
# Every bench additionally appends one "ffet.ledger.v1" line (kind=bench,
# wall time + peak RSS, recorded even when the bench fails) to the run
# ledger, and the flows inside the benches append their own kind=flow
# lines; `ffet_report history` / `ffet_report trend` read that history.
# FFET_LEDGER controls the path (unset here defaults to
# .ffet_ledger/ledger.jsonl; set FFET_LEDGER=0 to disable).
# bench_router additionally writes BENCH_router.json (maze-routing kernel:
# legacy vs. windowed A*); the committed copy is the baseline CI's
# quick-bench regression gate diffs against (scripts/check_bench.py router).
# bench_scale writes BENCH_scale.json (workload-mesh scaling series:
# per-stage cells/sec + peak RSS from ~10k to 1M+ cells); the committed
# copy is the reference series, and CI's `ffet_report trend --rss-rise`
# soft gate watches the quick points' peak RSS in the run ledger.  With
# --trace each bench additionally writes trace_<bench>.json (Chrome
# trace-event format — load in chrome://tracing or https://ui.perfetto.dev)
# and appends per-point flow reports to flow_reports.jsonl.  Benches that
# run no flow points (bench_table1/fig4/table2 print library/rule-deck
# tables directly) legitimately produce tiny or no trace files and no
# flow-report lines.
set -e
cd "$(dirname "$0")"

FULL="bench_table1 bench_fig4 bench_table2 bench_fig8 bench_fig9 \
      bench_fig10 bench_fig11 bench_table3 bench_fig12 bench_fig13 \
      bench_ablation bench_cost_extension bench_router bench_eco \
      bench_scale"
QUICK="bench_table1 bench_fig4 bench_table2 bench_eco bench_scale"

run_stages=1
trace=0
quick=0
serve=0
named=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --trace) trace=1 ;;
    --serve) serve=1 ;;
    *) named="$named $arg" ;;
  esac
done

# A named bench must exist: an unknown name (a typo, or a bench that was
# renamed) used to fall through to "./build/bench/<name>: not found" buried
# in the output — and, worse, a name list that matched *nothing* ran zero
# benches and exited 0.  Skipped-by-filter must never read as passed.
for b in $named; do
  case " $FULL bench_stages " in
    *" $b "*) ;;
    *) echo "run_benches.sh: unknown bench '$b'" >&2
       echo "known benches:$(echo '' $FULL bench_stages)" >&2
       exit 2 ;;
  esac
done

# Bench-name filtering and --quick compose: a named list picks *which*
# benches run, --quick independently picks *how* they run.  Earlier
# revisions dropped the quick flag (and with it the router artifacts) as
# soon as a bench list was named.
if [ -n "$named" ]; then
  benches=$named
  run_stages=0
elif [ "$serve" = 1 ] && [ "$quick" = 0 ]; then
  benches=""     # bare --serve runs just the service smoke
  run_stages=0
elif [ "$quick" = 1 ]; then
  benches=$QUICK
  run_stages=0
else
  benches=$FULL
fi

JSONL=$(mktemp)
trap 'rm -f "$JSONL"' EXIT
export FFET_BENCH_JSON="$JSONL"

# Resolve the run-ledger path with the same semantics as the flow
# (flow::resolve_ledger_path): unset/empty here defaults the ledger ON.
case "${FFET_LEDGER-1}" in
  ""|0) LEDGER="" ;;
  1)    LEDGER=".ffet_ledger/ledger.jsonl" ;;
  *)    LEDGER="$FFET_LEDGER" ;;
esac
if [ -n "$LEDGER" ]; then
  mkdir -p "$(dirname "$LEDGER")" 2>/dev/null || true
  export FFET_LEDGER="$LEDGER"   # flows inside the benches append too
else
  unset FFET_LEDGER
fi

# Append one kind=bench ledger line for a finished bench (pass or fail).
# Peak RSS comes from polling /proc/<pid>/status VmHWM while the bench
# runs (no GNU time dependency); 0 when /proc is unavailable.
ledger_bench_line() {
  # $1=bench $2=exit-code $3=wall-ms $4=peak-rss-kb
  [ -n "$LEDGER" ] || return 0
  if [ "$2" = 0 ]; then _valid=true; else _valid=false; fi
  printf '{"schema":"ffet.ledger.v1","kind":"bench","label":"%s","timestamp_s":%s,"host":"%s","threads":%s,"valid":%s,"metrics":{"runtime_ms":%s,"peak_rss_kb":%s,"exit_code":%s}}\n' \
    "$1" "$(date +%s)" "$(hostname 2>/dev/null || echo unknown)" \
    "${FFET_THREADS:-0}" "$_valid" "$3" "$4" "$2" >> "$LEDGER"
}

# Run one bench, timing it and tracking its peak RSS; records the ledger
# line even when the bench exits nonzero, then propagates that exit code.
run_bench() {
  _b=$1; shift
  _t0=$(date +%s%N)
  "$@" &
  _pid=$!
  _peak=0
  while kill -0 "$_pid" 2>/dev/null; do
    _hwm=$(awk '/^VmHWM:/{print $2}' "/proc/$_pid/status" 2>/dev/null)
    case "$_hwm" in
      ''|*[!0-9]*) ;;
      *) [ "$_hwm" -gt "$_peak" ] && _peak=$_hwm ;;
    esac
    sleep 0.05
  done
  wait "$_pid"
  _rc=$?
  _t1=$(date +%s%N)
  case "$_t0$_t1" in
    *N*) _ms=0 ;;  # date without %N support
    *)   _ms=$(( (_t1 - _t0) / 1000000 )) ;;
  esac
  ledger_bench_line "$_b" "$_rc" "$_ms" "$_peak"
  return $_rc
}

# A bench failure must fail the script (CI gates on it), but one bad bench
# should not mask the results of the rest: run them all, then report.
failures=""
for b in $benches; do
  # Every bench parses --quick (bench_common.h); each decides what a
  # reduced sweep means (bench_eco trims ECO passes, bench_router drops to
  # one timing rep, the sweep benches thin their points).
  flags=""
  if [ "$quick" = 1 ]; then
    flags="--quick"
  fi
  if [ "$trace" = 1 ]; then
    # Exported (not assignment-prefixed) because run_bench is a function:
    # POSIX leaves prefix-assignment visibility on functions unspecified.
    export FFET_TRACE="trace_${b}.json"
    export FFET_FLOW_REPORT="flow_reports.jsonl"
  fi
  run_bench "$b" ./build/bench/$b $flags || failures="$failures $b"
done

# --serve: route the Fig. 8 --quick sweep through a local ffet_serve daemon
# and gate on the service contract: per-point QoR identity with the
# in-process run (ffet_report diff --qor must be empty) and a second
# identical submission served 100% from the daemon's cache.  The daemon
# runs with the full observability plane on: a merged cross-process Chrome
# trace (serve_smoke_trace.json — must contain the daemon plus >=2 worker
# pids), per-point latency attribution, and a live STATS snapshot
# (serve_smoke_stats.json) that must parse through `ffet_report
# serve-stats` and show at least one cache hit after the resubmission.
# Artifacts: serve_smoke_local.jsonl / serve_smoke_served{,2}.jsonl, the
# daemon log serve_smoke_daemon.log, trace and stats (CI uploads them).
# FFET_SERVE_SMOKE_OPTS can shrink the workload (e.g. "--registers 8").
run_serve_smoke() {
  echo ""
  echo "=== serve smoke: Fig. 8 --quick sweep through ffet_serve ==="
  _sock=".ffet_serve_smoke.sock"
  _cache=".ffet_serve_smoke_cache"
  _dlog="serve_smoke_daemon.log"
  _strace="serve_smoke_trace.json"
  _stats="serve_smoke_stats.json"
  rm -rf "$_cache"
  rm -f "$_sock" "$_dlog" "$_strace" "$_stats"
  ./build/examples/ffet_serve --socket "$_sock" --cache "$_cache" \
    --workers "${FFET_WORKERS:-2}" --log "$_dlog" \
    --trace "$_strace" --attrib &
  _daemon=$!
  _up=0
  for _i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    if ./build/examples/ffet_submit --socket "$_sock" --ping \
        >/dev/null 2>&1; then
      _up=1
      break
    fi
    sleep 0.25
  done
  if [ "$_up" != 1 ]; then
    echo "serve smoke: daemon did not come up" >&2
    kill "$_daemon" 2>/dev/null || true
    return 1
  fi
  _rc=0
  ./build/examples/ffet_submit --socket "$_sock" --ping --count 3 || _rc=1
  # shellcheck disable=SC2086  # OPTS is intentionally word-split
  ./build/examples/ffet_submit --local --fig8-quick ${FFET_SERVE_SMOKE_OPTS-} \
    --out serve_smoke_local.jsonl || _rc=1
  ./build/examples/ffet_submit --socket "$_sock" --fig8-quick \
    --trace-id serve-smoke ${FFET_SERVE_SMOKE_OPTS-} \
    --out serve_smoke_served.jsonl || _rc=1
  # Second submission of the identical sweep: zero flow runs allowed.
  ./build/examples/ffet_submit --socket "$_sock" --fig8-quick \
    --trace-id serve-smoke-resubmit ${FFET_SERVE_SMOKE_OPTS-} --expect-cached \
    --out serve_smoke_served2.jsonl || _rc=1
  ./build/examples/ffet_report diff --mode flow --qor \
    serve_smoke_local.jsonl serve_smoke_served.jsonl || _rc=1
  ./build/examples/ffet_report diff --mode flow --qor \
    serve_smoke_local.jsonl serve_smoke_served2.jsonl || _rc=1
  # Live stats: the snapshot must parse and the resubmission must have
  # produced at least one cache hit.
  ./build/examples/ffet_submit --socket "$_sock" --stats \
    --out "$_stats" || _rc=1
  ./build/examples/ffet_report serve-stats "$_stats" || _rc=1
  if ! grep -q '"cache_hits":[1-9]' "$_stats"; then
    echo "serve smoke: no cache hits in $_stats after resubmission" >&2
    _rc=1
  fi
  ./build/examples/ffet_submit --socket "$_sock" --shutdown || _rc=1
  wait "$_daemon" || _rc=1
  # The merged trace is written at daemon shutdown: one file, real pids —
  # the daemon plus at least two distinct worker processes.
  if [ ! -s "$_strace" ]; then
    echo "serve smoke: merged trace $_strace missing" >&2
    _rc=1
  else
    _pids=$(tr ',' '\n' < "$_strace" | sed -n 's/.*"pid":\([0-9]*\).*/\1/p' \
      | sort -u | wc -l)
    if [ "$_pids" -lt 3 ]; then
      echo "serve smoke: merged trace has $_pids pid(s), want >=3" >&2
      _rc=1
    else
      echo "serve smoke: merged trace covers $_pids process(es)"
    fi
  fi
  if [ "$_rc" = 0 ]; then
    echo "serve smoke: PASS (QoR-identical to in-process, resubmit fully cached)"
  else
    echo "serve smoke: FAIL" >&2
  fi
  return $_rc
}

if [ "$serve" = 1 ]; then
  run_serve_smoke || failures="$failures serve_smoke"
fi

# google-benchmark microbenchmarks last (shorter repetitions).
if [ "$run_stages" = 1 ]; then
  ./build/bench/bench_stages --benchmark_min_time=0.2 || true
fi

# Wrap the collected JSON lines into one machine-readable array.
if [ -s "$JSONL" ]; then
  {
    echo '['
    sed '$!s/$/,/' "$JSONL"
    echo ']'
  } > BENCH_sweeps.json
  echo ""
  echo "sweep timings written to BENCH_sweeps.json:"
  cat BENCH_sweeps.json
fi

if [ "$trace" = 1 ]; then
  echo ""
  echo "traces written:"
  ls -1 trace_*.json 2>/dev/null || true
fi

if [ -n "$failures" ]; then
  echo ""
  echo "FAILED benches:$failures" >&2
  exit 1
fi
