#!/bin/sh
# Regenerate every paper table/figure plus the extensions; used to produce
# bench_output.txt referenced by EXPERIMENTS.md.
#
# Usage:
#   ./run_benches.sh                  # full set
#   ./run_benches.sh --quick          # fast smoke subset (CI)
#   ./run_benches.sh --trace          # also capture per-bench Chrome traces
#   ./run_benches.sh bench_fig10 ...  # only the named benches
#
# Wall-clock timing of every sweep bench is collected (via the
# FFET_BENCH_JSON hook in bench_common.h) into BENCH_sweeps.json; the lines
# include per-point min/mean/max and per-stage wall-time breakdowns.
# bench_router additionally writes BENCH_router.json (maze-routing kernel:
# legacy vs. windowed A*); the committed copy is the baseline CI's
# quick-bench regression gate diffs against (scripts/check_bench.py router).  With
# --trace each bench additionally writes trace_<bench>.json (Chrome
# trace-event format — load in chrome://tracing or https://ui.perfetto.dev)
# and appends per-point flow reports to flow_reports.jsonl.  Benches that
# run no flow points (bench_table1/fig4/table2 print library/rule-deck
# tables directly) legitimately produce tiny or no trace files and no
# flow-report lines.
set -e
cd "$(dirname "$0")"

FULL="bench_table1 bench_fig4 bench_table2 bench_fig8 bench_fig9 \
      bench_fig10 bench_fig11 bench_table3 bench_fig12 bench_fig13 \
      bench_ablation bench_cost_extension bench_router bench_eco"
QUICK="bench_table1 bench_fig4 bench_table2 bench_eco"

run_stages=1
trace=0
quick=0
named=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --trace) trace=1 ;;
    *) named="$named $arg" ;;
  esac
done

# Bench-name filtering and --quick compose: a named list picks *which*
# benches run, --quick independently picks *how* they run.  Earlier
# revisions dropped the quick flag (and with it the router artifacts) as
# soon as a bench list was named.
if [ -n "$named" ]; then
  benches=$named
  run_stages=0
elif [ "$quick" = 1 ]; then
  benches=$QUICK
  run_stages=0
else
  benches=$FULL
fi

JSONL=$(mktemp)
trap 'rm -f "$JSONL"' EXIT
export FFET_BENCH_JSON="$JSONL"

# A bench failure must fail the script (CI gates on it), but one bad bench
# should not mask the results of the rest: run them all, then report.
failures=""
for b in $benches; do
  # Every bench parses --quick (bench_common.h); each decides what a
  # reduced sweep means (bench_eco trims ECO passes, bench_router drops to
  # one timing rep, the sweep benches thin their points).
  flags=""
  if [ "$quick" = 1 ]; then
    flags="--quick"
  fi
  if [ "$trace" = 1 ]; then
    FFET_TRACE="trace_${b}.json" FFET_FLOW_REPORT="flow_reports.jsonl" \
      ./build/bench/$b $flags || failures="$failures $b"
  else
    ./build/bench/$b $flags || failures="$failures $b"
  fi
done

# google-benchmark microbenchmarks last (shorter repetitions).
if [ "$run_stages" = 1 ]; then
  ./build/bench/bench_stages --benchmark_min_time=0.2 || true
fi

# Wrap the collected JSON lines into one machine-readable array.
if [ -s "$JSONL" ]; then
  {
    echo '['
    sed '$!s/$/,/' "$JSONL"
    echo ']'
  } > BENCH_sweeps.json
  echo ""
  echo "sweep timings written to BENCH_sweeps.json:"
  cat BENCH_sweeps.json
fi

if [ "$trace" = 1 ]; then
  echo ""
  echo "traces written:"
  ls -1 trace_*.json 2>/dev/null || true
fi

if [ -n "$failures" ]; then
  echo ""
  echo "FAILED benches:$failures" >&2
  exit 1
fi
