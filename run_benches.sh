#!/bin/sh
# Regenerate every paper table/figure plus the extensions; used to produce
# bench_output.txt referenced by EXPERIMENTS.md.
set -e
cd "$(dirname "$0")"
for b in bench_table1 bench_fig4 bench_table2 bench_fig8 bench_fig9 \
         bench_fig10 bench_fig11 bench_table3 bench_fig12 bench_fig13 \
         bench_ablation bench_cost_extension; do
  ./build/bench/$b
done
# google-benchmark microbenchmarks last (shorter repetitions).
./build/bench/bench_stages --benchmark_min_time=0.2 || true
