#!/bin/sh
# Regenerate every paper table/figure plus the extensions; used to produce
# bench_output.txt referenced by EXPERIMENTS.md.
#
# Usage:
#   ./run_benches.sh                  # full set
#   ./run_benches.sh --quick          # fast smoke subset (CI)
#   ./run_benches.sh --trace          # also capture per-bench Chrome traces
#   ./run_benches.sh bench_fig10 ...  # only the named benches
#
# Wall-clock timing of every sweep bench is collected (via the
# FFET_BENCH_JSON hook in bench_common.h) into BENCH_sweeps.json; the lines
# include per-point min/mean/max and per-stage wall-time breakdowns.
# Every bench additionally appends one "ffet.ledger.v1" line (kind=bench,
# wall time + peak RSS, recorded even when the bench fails) to the run
# ledger, and the flows inside the benches append their own kind=flow
# lines; `ffet_report history` / `ffet_report trend` read that history.
# FFET_LEDGER controls the path (unset here defaults to
# .ffet_ledger/ledger.jsonl; set FFET_LEDGER=0 to disable).
# bench_router additionally writes BENCH_router.json (maze-routing kernel:
# legacy vs. windowed A*); the committed copy is the baseline CI's
# quick-bench regression gate diffs against (scripts/check_bench.py router).
# bench_scale writes BENCH_scale.json (workload-mesh scaling series:
# per-stage cells/sec + peak RSS from ~10k to 1M+ cells); the committed
# copy is the reference series, and CI's `ffet_report trend --rss-rise`
# soft gate watches the quick points' peak RSS in the run ledger.  With
# --trace each bench additionally writes trace_<bench>.json (Chrome
# trace-event format — load in chrome://tracing or https://ui.perfetto.dev)
# and appends per-point flow reports to flow_reports.jsonl.  Benches that
# run no flow points (bench_table1/fig4/table2 print library/rule-deck
# tables directly) legitimately produce tiny or no trace files and no
# flow-report lines.
set -e
cd "$(dirname "$0")"

FULL="bench_table1 bench_fig4 bench_table2 bench_fig8 bench_fig9 \
      bench_fig10 bench_fig11 bench_table3 bench_fig12 bench_fig13 \
      bench_ablation bench_cost_extension bench_router bench_eco \
      bench_scale"
QUICK="bench_table1 bench_fig4 bench_table2 bench_eco bench_scale"

run_stages=1
trace=0
quick=0
named=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --trace) trace=1 ;;
    *) named="$named $arg" ;;
  esac
done

# Bench-name filtering and --quick compose: a named list picks *which*
# benches run, --quick independently picks *how* they run.  Earlier
# revisions dropped the quick flag (and with it the router artifacts) as
# soon as a bench list was named.
if [ -n "$named" ]; then
  benches=$named
  run_stages=0
elif [ "$quick" = 1 ]; then
  benches=$QUICK
  run_stages=0
else
  benches=$FULL
fi

JSONL=$(mktemp)
trap 'rm -f "$JSONL"' EXIT
export FFET_BENCH_JSON="$JSONL"

# Resolve the run-ledger path with the same semantics as the flow
# (flow::resolve_ledger_path): unset/empty here defaults the ledger ON.
case "${FFET_LEDGER-1}" in
  ""|0) LEDGER="" ;;
  1)    LEDGER=".ffet_ledger/ledger.jsonl" ;;
  *)    LEDGER="$FFET_LEDGER" ;;
esac
if [ -n "$LEDGER" ]; then
  mkdir -p "$(dirname "$LEDGER")" 2>/dev/null || true
  export FFET_LEDGER="$LEDGER"   # flows inside the benches append too
else
  unset FFET_LEDGER
fi

# Append one kind=bench ledger line for a finished bench (pass or fail).
# Peak RSS comes from polling /proc/<pid>/status VmHWM while the bench
# runs (no GNU time dependency); 0 when /proc is unavailable.
ledger_bench_line() {
  # $1=bench $2=exit-code $3=wall-ms $4=peak-rss-kb
  [ -n "$LEDGER" ] || return 0
  if [ "$2" = 0 ]; then _valid=true; else _valid=false; fi
  printf '{"schema":"ffet.ledger.v1","kind":"bench","label":"%s","timestamp_s":%s,"host":"%s","threads":%s,"valid":%s,"metrics":{"runtime_ms":%s,"peak_rss_kb":%s,"exit_code":%s}}\n' \
    "$1" "$(date +%s)" "$(hostname 2>/dev/null || echo unknown)" \
    "${FFET_THREADS:-0}" "$_valid" "$3" "$4" "$2" >> "$LEDGER"
}

# Run one bench, timing it and tracking its peak RSS; records the ledger
# line even when the bench exits nonzero, then propagates that exit code.
run_bench() {
  _b=$1; shift
  _t0=$(date +%s%N)
  "$@" &
  _pid=$!
  _peak=0
  while kill -0 "$_pid" 2>/dev/null; do
    _hwm=$(awk '/^VmHWM:/{print $2}' "/proc/$_pid/status" 2>/dev/null)
    case "$_hwm" in
      ''|*[!0-9]*) ;;
      *) [ "$_hwm" -gt "$_peak" ] && _peak=$_hwm ;;
    esac
    sleep 0.05
  done
  wait "$_pid"
  _rc=$?
  _t1=$(date +%s%N)
  case "$_t0$_t1" in
    *N*) _ms=0 ;;  # date without %N support
    *)   _ms=$(( (_t1 - _t0) / 1000000 )) ;;
  esac
  ledger_bench_line "$_b" "$_rc" "$_ms" "$_peak"
  return $_rc
}

# A bench failure must fail the script (CI gates on it), but one bad bench
# should not mask the results of the rest: run them all, then report.
failures=""
for b in $benches; do
  # Every bench parses --quick (bench_common.h); each decides what a
  # reduced sweep means (bench_eco trims ECO passes, bench_router drops to
  # one timing rep, the sweep benches thin their points).
  flags=""
  if [ "$quick" = 1 ]; then
    flags="--quick"
  fi
  if [ "$trace" = 1 ]; then
    # Exported (not assignment-prefixed) because run_bench is a function:
    # POSIX leaves prefix-assignment visibility on functions unspecified.
    export FFET_TRACE="trace_${b}.json"
    export FFET_FLOW_REPORT="flow_reports.jsonl"
  fi
  run_bench "$b" ./build/bench/$b $flags || failures="$failures $b"
done

# google-benchmark microbenchmarks last (shorter repetitions).
if [ "$run_stages" = 1 ]; then
  ./build/bench/bench_stages --benchmark_min_time=0.2 || true
fi

# Wrap the collected JSON lines into one machine-readable array.
if [ -s "$JSONL" ]; then
  {
    echo '['
    sed '$!s/$/,/' "$JSONL"
    echo ']'
  } > BENCH_sweeps.json
  echo ""
  echo "sweep timings written to BENCH_sweeps.json:"
  cat BENCH_sweeps.json
fi

if [ "$trace" = 1 ]; then
  echo ""
  echo "traces written:"
  ls -1 trace_*.json 2>/dev/null || true
fi

if [ -n "$failures" ]; then
  echo ""
  echo "FAILED benches:$failures" >&2
  exit 1
fi
