#!/bin/sh
# Regenerate every paper table/figure plus the extensions; used to produce
# bench_output.txt referenced by EXPERIMENTS.md.
#
# Usage:
#   ./run_benches.sh                  # full set
#   ./run_benches.sh --quick          # fast smoke subset (CI)
#   ./run_benches.sh bench_fig10 ...  # only the named benches
#
# Wall-clock timing of every sweep bench is collected (via the
# FFET_BENCH_JSON hook in bench_common.h) into BENCH_sweeps.json.
set -e
cd "$(dirname "$0")"

FULL="bench_table1 bench_fig4 bench_table2 bench_fig8 bench_fig9 \
      bench_fig10 bench_fig11 bench_table3 bench_fig12 bench_fig13 \
      bench_ablation bench_cost_extension"
QUICK="bench_table1 bench_fig4 bench_table2"

run_stages=1
case "$1" in
  --quick)
    benches=$QUICK
    run_stages=0
    shift
    ;;
  "")
    benches=$FULL
    ;;
  *)
    benches="$@"
    run_stages=0
    ;;
esac

JSONL=$(mktemp)
trap 'rm -f "$JSONL"' EXIT
export FFET_BENCH_JSON="$JSONL"

for b in $benches; do
  ./build/bench/$b
done

# google-benchmark microbenchmarks last (shorter repetitions).
if [ "$run_stages" = 1 ]; then
  ./build/bench/bench_stages --benchmark_min_time=0.2 || true
fi

# Wrap the collected JSON lines into one machine-readable array.
if [ -s "$JSONL" ]; then
  {
    echo '['
    sed '$!s/$/,/' "$JSONL"
    echo ']'
  } > BENCH_sweeps.json
  echo ""
  echo "sweep timings written to BENCH_sweeps.json:"
  cat BENCH_sweeps.json
fi
